//! Crash-safe checkpoints for streaming generation.
//!
//! A sequential strip stream (`rrs-surface`'s `StripGenerator`) is fully
//! determined by `(seed, height, cursor)`: the noise lattice is a pure
//! function of the seed, so a generator rebuilt from the same spectrum and
//! seed, `seek`ed to the saved cursor, continues the *identical* surface.
//! This module pins that resumable state to a tiny self-validating record:
//!
//! ```text
//! magic   "RRSCKPT1"  (8 bytes)
//! seed    u64
//! height  u64   — transverse extent ny of the stream
//! cursor  i64   — x position of the next strip
//! crc     u64   — FNV-1a over the 24 state bytes
//! ```
//!
//! All fields little-endian; 40 bytes total. The checksum makes a torn or
//! corrupted checkpoint detectable, so a crashed run falls back to the
//! previous good checkpoint instead of silently resuming from garbage.

use crate::atomic::AtomicFile;
use crate::retry::{RetryPolicy, ThreadSleeper};
use crate::snapshot::{fnv1a, read_u64_le};
use rrs_chaos::{ChaosInjector, FaultSite};
use rrs_error::{Budget, RrsError};
use rrs_obs::{stage, ObsSink, Recorder};
use std::io::{Read, Write};
use std::path::Path;

/// The 8-byte magic prefix identifying a stream checkpoint (format v1).
pub const MAGIC: &[u8; 8] = b"RRSCKPT1";

/// Byte length of a serialised checkpoint.
pub const CHECKPOINT_LEN: usize = 40;

/// The complete resumable state of a sequential strip stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamCheckpoint {
    /// Seed of the backing noise lattice.
    pub seed: u64,
    /// Transverse extent `ny` of the stream.
    pub height: u64,
    /// `x` position of the next strip to generate.
    pub cursor: i64,
}

/// Serialises a checkpoint. Write failures surface as [`RrsError::Io`].
pub fn write_checkpoint<W: Write>(mut w: W, cp: &StreamCheckpoint) -> Result<(), RrsError> {
    let mut buf = [0u8; CHECKPOINT_LEN];
    buf[..8].copy_from_slice(MAGIC);
    buf[8..16].copy_from_slice(&cp.seed.to_le_bytes());
    buf[16..24].copy_from_slice(&cp.height.to_le_bytes());
    buf[24..32].copy_from_slice(&cp.cursor.to_le_bytes());
    let crc = fnv1a(&buf[8..32]);
    buf[32..40].copy_from_slice(&crc.to_le_bytes());
    w.write_all(&buf)?;
    Ok(())
}

/// Writes a checkpoint to `path` crash-atomically: the record goes to a
/// tmp file first, is fsynced, and only then renamed over `path`, so a
/// crash mid-write can never replace a good checkpoint with a torn one —
/// the previous checkpoint survives intact.
pub fn write_checkpoint_file<P: AsRef<Path>>(
    path: P,
    cp: &StreamCheckpoint,
) -> Result<(), RrsError> {
    write_checkpoint_file_observed(path, cp, &Recorder::disabled())
}

/// [`write_checkpoint_file`] with the write and the durability barrier
/// timed separately (`checkpoint/write`, `checkpoint/fsync` — the latter
/// covering fsync + rename) and bytes counted (`checkpoint/bytes`) —
/// fsync dominates on most filesystems, and this split makes that visible
/// in resume benchmarks.
pub fn write_checkpoint_file_observed<P: AsRef<Path>>(
    path: P,
    cp: &StreamCheckpoint,
    obs: &Recorder,
) -> Result<(), RrsError> {
    let span = obs.start(stage::CHECKPOINT_WRITE);
    let mut af = AtomicFile::create(path)?;
    write_checkpoint(af.writer(), cp)?;
    obs.finish(span);
    let span = obs.start(stage::CHECKPOINT_FSYNC);
    af.commit()?;
    obs.finish(span);
    obs.add_counter(stage::CHECKPOINT_BYTES, CHECKPOINT_LEN as u64);
    Ok(())
}

/// [`write_checkpoint_file_observed`] wrapped in a [`RetryPolicy`]:
/// transient I/O faults (a briefly-full disk, an injected `failpoints`
/// fault) are retried with deterministic exponential backoff before the
/// stream gives up, and every attempt is visible in the obs report
/// (`retry/attempts`, `retry/backoff`). Each attempt is itself atomic, so
/// a failed attempt never corrupts the previous checkpoint.
pub fn write_checkpoint_file_retrying<P: AsRef<Path>>(
    path: P,
    cp: &StreamCheckpoint,
    policy: RetryPolicy,
    obs: &Recorder,
) -> Result<(), RrsError> {
    write_checkpoint_file_resilient(
        path,
        cp,
        policy,
        obs,
        &Budget::unlimited(),
        &ChaosInjector::disabled(),
    )
}

/// [`write_checkpoint_file_retrying`] under a [`Budget`] and a
/// [`ChaosInjector`] — the full-fidelity form used by deadlined streaming
/// runs and the chaos torture suite. Backoffs are clamped against the
/// budget's deadline (see
/// [`RetryPolicy::run_with_sleeper_budgeted`]), and the injector's
/// [`FaultSite::CheckpointWrite`] site is polled (contained) before every
/// write attempt, so an injected panic surfaces as a typed
/// [`RrsError::WorkerPanicked`] while the previous checkpoint on disk
/// stays intact.
pub fn write_checkpoint_file_resilient<P: AsRef<Path>>(
    path: P,
    cp: &StreamCheckpoint,
    policy: RetryPolicy,
    obs: &Recorder,
    budget: &Budget,
    chaos: &ChaosInjector,
) -> Result<(), RrsError> {
    let path = path.as_ref();
    policy.run_with_sleeper_budgeted(obs, &ThreadSleeper, budget, chaos, &mut || {
        chaos.poll_contained(FaultSite::CheckpointWrite)?;
        write_checkpoint_file_observed(path, cp, obs)
    })
}

/// Reads and validates a checkpoint from `path`.
pub fn read_checkpoint_file<P: AsRef<Path>>(path: P) -> Result<StreamCheckpoint, RrsError> {
    read_checkpoint(std::fs::File::open(path)?)
}

/// Deserialises a checkpoint, verifying length, magic and checksum.
/// Corruption surfaces as [`RrsError::CorruptSnapshot`].
pub fn read_checkpoint<R: Read>(mut r: R) -> Result<StreamCheckpoint, RrsError> {
    let mut raw = Vec::new();
    r.read_to_end(&mut raw)?;
    let bad = |msg: &str| RrsError::corrupt_snapshot(msg);
    if raw.len() != CHECKPOINT_LEN {
        return Err(bad("checkpoint length is wrong"));
    }
    if &raw[..8] != MAGIC {
        return Err(bad("bad magic"));
    }
    let crc_expect = fnv1a(&raw[8..32]);
    if read_u64_le(&raw, 32) != crc_expect {
        return Err(bad("checksum mismatch"));
    }
    Ok(StreamCheckpoint {
        seed: read_u64_le(&raw, 8),
        height: read_u64_le(&raw, 16),
        cursor: i64::from_le_bytes(raw[24..32].try_into().expect("8-byte slice")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StreamCheckpoint {
        StreamCheckpoint { seed: 0xDEAD_BEEF_1234_5678, height: 96, cursor: -417 }
    }

    #[test]
    fn round_trip_is_exact() {
        let mut buf = Vec::new();
        write_checkpoint(&mut buf, &sample()).unwrap();
        assert_eq!(buf.len(), CHECKPOINT_LEN);
        assert_eq!(read_checkpoint(buf.as_slice()).unwrap(), sample());
    }

    #[test]
    fn negative_cursor_round_trips() {
        let cp = StreamCheckpoint { seed: 1, height: 1, cursor: i64::MIN };
        let mut buf = Vec::new();
        write_checkpoint(&mut buf, &cp).unwrap();
        assert_eq!(read_checkpoint(buf.as_slice()).unwrap(), cp);
    }

    #[test]
    fn any_single_bit_flip_is_detected() {
        let mut clean = Vec::new();
        write_checkpoint(&mut clean, &sample()).unwrap();
        for bit in 0..clean.len() * 8 {
            let mut buf = clean.clone();
            buf[bit / 8] ^= 1 << (bit % 8);
            assert!(
                read_checkpoint(buf.as_slice()).is_err(),
                "bit {bit} flip went undetected"
            );
        }
    }

    #[test]
    fn truncation_is_detected() {
        let mut buf = Vec::new();
        write_checkpoint(&mut buf, &sample()).unwrap();
        for keep in 0..buf.len() {
            let err = read_checkpoint(&buf[..keep]).unwrap_err();
            assert!(err.to_string().contains("corrupt snapshot"), "keep={keep}: {err}");
        }
    }

    #[test]
    fn wrong_magic_rejected() {
        let mut buf = Vec::new();
        write_checkpoint(&mut buf, &sample()).unwrap();
        buf[0] = b'X';
        let err = read_checkpoint(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn retrying_write_succeeds_first_try_with_one_counted_attempt() {
        let path = std::env::temp_dir()
            .join(format!("rrs_ckpt_retry_{}.bin", std::process::id()));
        let rec = Recorder::enabled();
        write_checkpoint_file_retrying(&path, &sample(), RetryPolicy::default(), &rec).unwrap();
        let got = read_checkpoint_file(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(got, sample());
        assert_eq!(rec.report().counter(stage::RETRY_ATTEMPTS), 1);
    }

    #[test]
    fn atomic_write_replaces_previous_checkpoint_without_tmp_leftovers() {
        let dir = std::env::temp_dir()
            .join(format!("rrs_ckpt_atomic_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.ckpt");
        write_checkpoint_file(&path, &sample()).unwrap();
        let newer = StreamCheckpoint { cursor: sample().cursor + 64, ..sample() };
        write_checkpoint_file(&path, &newer).unwrap();
        assert_eq!(read_checkpoint_file(&path).unwrap(), newer);
        let stray: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|e| e == "tmp"))
            .collect();
        assert!(stray.is_empty(), "tmp files leaked: {stray:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_fault_leaves_previous_checkpoint_intact() {
        use rrs_chaos::{FaultKind, FaultSchedule};
        use rrs_error::ErrorKind;
        let path = std::env::temp_dir()
            .join(format!("rrs_ckpt_chaos_{}.bin", std::process::id()));
        write_checkpoint_file(&path, &sample()).unwrap();
        let newer = StreamCheckpoint { cursor: sample().cursor + 64, ..sample() };

        // An Error fault at the first CheckpointWrite visit: the write
        // never starts, the error is typed, and the old record survives.
        let chaos = ChaosInjector::new(
            FaultSchedule::new(7).with_fault(FaultSite::CheckpointWrite, FaultKind::Error, 0),
        );
        let err = write_checkpoint_file_resilient(
            &path,
            &newer,
            RetryPolicy::default(),
            &Recorder::disabled(),
            &Budget::unlimited(),
            &chaos,
        )
        .unwrap_err();
        assert_eq!(err.kind(), ErrorKind::FaultInjected);
        assert_eq!(read_checkpoint_file(&path).unwrap(), sample());

        // A Panic fault is contained to WorkerPanicked; same guarantee.
        let chaos = ChaosInjector::new(
            FaultSchedule::new(8).with_fault(FaultSite::CheckpointWrite, FaultKind::Panic, 0),
        );
        let err = write_checkpoint_file_resilient(
            &path,
            &newer,
            RetryPolicy::default(),
            &Recorder::disabled(),
            &Budget::unlimited(),
            &chaos,
        )
        .unwrap_err();
        assert_eq!(err.kind(), ErrorKind::WorkerPanicked);
        assert_eq!(read_checkpoint_file(&path).unwrap(), sample());

        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn observed_file_round_trip_reports_write_and_fsync() {
        let path = std::env::temp_dir()
            .join(format!("rrs_ckpt_obs_{}.bin", std::process::id()));
        let rec = Recorder::enabled();
        write_checkpoint_file_observed(&path, &sample(), &rec).unwrap();
        let got = read_checkpoint_file(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(got, sample());
        let report = rec.report();
        assert_eq!(report.counter(stage::CHECKPOINT_BYTES), CHECKPOINT_LEN as u64);
        assert_eq!(report.durations[stage::CHECKPOINT_WRITE].count, 1);
        assert_eq!(report.durations[stage::CHECKPOINT_FSYNC].count, 1);
    }
}
