//! Crash-atomic durable file writes: tmp + fsync + rename.
//!
//! Every path-based exporter in this crate routes through [`AtomicFile`]
//! so that a crash, a full disk or an injected fault mid-write can never
//! leave a torn file at the final path. The protocol is the classic one:
//!
//! 1. write the full payload to `<path>.<pid>.tmp` in the same directory
//!    (same filesystem, so the rename below cannot degrade to a copy);
//! 2. `fsync` the tmp file — the payload is durable before it becomes
//!    visible;
//! 3. `rename` the tmp file over the final path — atomic on POSIX
//!    filesystems, so readers observe either the old complete file or the
//!    new complete file, never a prefix;
//! 4. best-effort `fsync` of the parent directory, making the rename
//!    itself durable.
//!
//! If any step fails (or the [`AtomicFile`] is dropped without
//! [`AtomicFile::commit`]), the tmp file is removed and the final path is
//! untouched — the failure-atomicity the `failpoints` suite proves with
//! injected mid-write faults.

use rrs_error::{ResultExt, RrsError};
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};

/// An in-progress atomic replacement of the file at `path`.
///
/// Write the payload through [`AtomicFile::writer`], then
/// [`AtomicFile::commit`]. Dropping without committing removes the tmp
/// file and leaves the destination untouched.
#[derive(Debug)]
pub struct AtomicFile {
    dest: PathBuf,
    tmp: PathBuf,
    file: Option<File>,
}

impl AtomicFile {
    /// Opens the tmp file next to `dest` (`<dest>.<pid>.tmp`).
    pub fn create<P: AsRef<Path>>(dest: P) -> Result<Self, RrsError> {
        let dest = dest.as_ref().to_path_buf();
        let mut name = dest
            .file_name()
            .map(|n| n.to_os_string())
            .unwrap_or_else(|| "rrs".into());
        name.push(format!(".{}.tmp", std::process::id()));
        let tmp = dest.with_file_name(name);
        let file = File::create(&tmp)
            .map_err(RrsError::from)
            .with_context(|| format!("creating tmp file {}", tmp.display()))?;
        Ok(Self { dest, tmp, file: Some(file) })
    }

    /// The open tmp file to write the payload into.
    pub fn writer(&mut self) -> &mut File {
        self.file.as_mut().expect("writer called after commit")
    }

    /// Flushes and fsyncs the payload, then atomically renames the tmp
    /// file over the destination (with a best-effort parent-directory
    /// fsync so the rename itself is durable).
    pub fn commit(mut self) -> Result<(), RrsError> {
        let mut file = self.file.take().expect("commit called twice");
        file.flush()?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&self.tmp, &self.dest)
            .map_err(RrsError::from)
            .with_context(|| format!("renaming over {}", self.dest.display()))
            .inspect_err(|_| {
                let _ = std::fs::remove_file(&self.tmp);
            })?;
        // Durability of the rename is best-effort: not every platform
        // allows opening a directory for fsync, and the payload itself is
        // already durable either way.
        if let Some(parent) = self.dest.parent() {
            if let Ok(dir) = File::open(parent) {
                let _ = dir.sync_all();
            }
        }
        Ok(())
    }
}

impl Drop for AtomicFile {
    fn drop(&mut self) {
        if self.file.take().is_some() {
            let _ = std::fs::remove_file(&self.tmp);
        }
    }
}

/// Writes a file crash-atomically: `write(w)` produces the payload into
/// the tmp file, and only a fully-written, fsynced payload ever reaches
/// `path`. On any error the destination is untouched (previous content,
/// if any, intact) and the tmp file is cleaned up.
pub fn write_atomic<P, F>(path: P, write: F) -> Result<(), RrsError>
where
    P: AsRef<Path>,
    F: FnOnce(&mut dyn Write) -> Result<(), RrsError>,
{
    let mut af = AtomicFile::create(path)?;
    write(af.writer())?;
    af.commit()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("rrs_atomic_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn leftovers(dir: &Path) -> Vec<PathBuf> {
        std::fs::read_dir(dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|e| e == "tmp"))
            .collect()
    }

    #[test]
    fn successful_write_leaves_payload_and_no_tmp() {
        let dir = tmp_dir("ok");
        let dest = dir.join("out.bin");
        write_atomic(&dest, |w| {
            w.write_all(b"payload")?;
            Ok(())
        })
        .unwrap();
        assert_eq!(std::fs::read(&dest).unwrap(), b"payload");
        assert!(leftovers(&dir).is_empty(), "tmp file must not survive a commit");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_write_preserves_previous_content() {
        let dir = tmp_dir("fail");
        let dest = dir.join("out.bin");
        std::fs::write(&dest, b"previous good content").unwrap();
        let err = write_atomic(&dest, |w| {
            w.write_all(b"half a payl")?;
            Err(RrsError::corrupt_snapshot("injected failure mid-write"))
        })
        .unwrap_err();
        assert!(err.to_string().contains("injected"), "{err}");
        assert_eq!(
            std::fs::read(&dest).unwrap(),
            b"previous good content",
            "destination must be untouched on failure"
        );
        assert!(leftovers(&dir).is_empty(), "tmp file must be cleaned up on failure");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_write_never_creates_the_destination() {
        let dir = tmp_dir("absent");
        let dest = dir.join("new.bin");
        let _ = write_atomic(&dest, |_| {
            Err::<(), _>(RrsError::corrupt_snapshot("boom"))
        });
        assert!(!dest.exists(), "a failed first write must not create the file");
        assert!(leftovers(&dir).is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn panic_mid_write_unwinds_without_leaking_the_tmp_file() {
        // A worker panicking between `create` and `commit` (e.g. a chaos
        // injection inside the payload producer) drops the AtomicFile on
        // the unwind path, which must remove the tmp file and leave the
        // previous destination content intact.
        let dir = tmp_dir("panic");
        let dest = dir.join("out.bin");
        std::fs::write(&dest, b"previous good content").unwrap();
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut af = AtomicFile::create(&dest).unwrap();
            af.writer().write_all(b"half a payl").unwrap();
            panic!("injected panic mid-write");
        }))
        .unwrap_err();
        assert_eq!(
            payload.downcast_ref::<&str>(),
            Some(&"injected panic mid-write")
        );
        assert_eq!(
            std::fs::read(&dest).unwrap(),
            b"previous good content",
            "destination must be untouched when the writer panics"
        );
        assert!(
            leftovers(&dir).is_empty(),
            "tmp file must be removed on the unwind path"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_in_missing_directory_is_a_context_rich_error() {
        let dest = std::env::temp_dir()
            .join(format!("rrs_atomic_missing_{}", std::process::id()))
            .join("nope")
            .join("out.bin");
        let err = write_atomic(&dest, |_| Ok(())).unwrap_err();
        assert_eq!(err.kind(), rrs_error::ErrorKind::Io);
        assert!(err.to_string().contains("tmp file"), "{err}");
    }
}
