//! Rotated anisotropic spectra — an extension beyond the paper.
//!
//! The paper's anisotropy is always axis-aligned (`clx` along x, `cly`
//! along y). Real terrain features (dunes, furrows, swell) run at
//! arbitrary azimuths. Rotating a spectrum by `θ` rotates its
//! autocorrelation the same way:
//!
//! ```text
//! W'(K) = W(Rᵀ·K),   ρ'(r) = ρ(Rᵀ·r),   R = rotation by θ
//! ```
//!
//! Both transforms preserve the normalisation `∫W dK = h²`, so a
//! [`Rotated`] model drops into every generator unchanged.

use crate::model::Spectrum;
use crate::SurfaceParams;

/// A spectrum rotated counter-clockwise by `theta` radians.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Rotated<S> {
    /// The unrotated model.
    pub inner: S,
    /// Rotation angle (radians, counter-clockwise).
    pub theta: f64,
}

impl<S: Spectrum> Rotated<S> {
    /// Wraps `inner`, rotating its principal axes by `theta`.
    pub fn new(inner: S, theta: f64) -> Self {
        assert!(theta.is_finite(), "rotation angle must be finite");
        Self { inner, theta }
    }

    #[inline]
    fn to_local(&self, x: f64, y: f64) -> (f64, f64) {
        // Rᵀ·(x, y): rotate the query into the unrotated frame.
        let (s, c) = self.theta.sin_cos();
        (c * x + s * y, -s * x + c * y)
    }
}

impl<S: Spectrum> Spectrum for Rotated<S> {
    /// Axis-aligned *effective* parameters: `h` is unchanged, while the
    /// reported correlation lengths are the projections of the rotated
    /// correlation ellipse onto the x/y axes —
    /// `cl_x' = √((clx·cosθ)² + (cly·sinθ)²)` and symmetrically for y.
    /// This is what kernel auto-sizing needs: the kernel support must
    /// cover the rotated ellipse's bounding box, not the unrotated one.
    fn params(&self) -> SurfaceParams {
        let p = self.inner.params();
        let (s, c) = self.theta.sin_cos();
        let clx = ((p.clx * c).powi(2) + (p.cly * s).powi(2)).sqrt();
        let cly = ((p.clx * s).powi(2) + (p.cly * c).powi(2)).sqrt();
        SurfaceParams::new(p.h, clx, cly)
    }

    fn density(&self, kx: f64, ky: f64) -> f64 {
        let (u, v) = self.to_local(kx, ky);
        self.inner.density(u, v)
    }

    fn autocorrelation(&self, x: f64, y: f64) -> f64 {
        let (u, v) = self.to_local(x, y);
        self.inner.autocorrelation(u, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Gaussian;
    use core::f64::consts::FRAC_PI_2;

    fn aniso() -> Gaussian {
        Gaussian::new(SurfaceParams::new(1.0, 20.0, 5.0))
    }

    #[test]
    fn zero_rotation_is_identity() {
        let s = aniso();
        let r = Rotated::new(s, 0.0);
        for &(x, y) in &[(3.0, 4.0), (-7.0, 2.0), (0.0, 0.0)] {
            assert_eq!(r.autocorrelation(x, y), s.autocorrelation(x, y));
            assert_eq!(r.density(x * 0.1, y * 0.1), s.density(x * 0.1, y * 0.1));
        }
    }

    #[test]
    fn quarter_turn_swaps_axes() {
        let s = aniso();
        let r = Rotated::new(s, FRAC_PI_2);
        // After +90°, the long axis points along y.
        for &d in &[2.0, 5.0, 11.0] {
            let along_y = r.autocorrelation(0.0, d);
            let expect = s.autocorrelation(d, 0.0);
            assert!((along_y - expect).abs() < 1e-12);
        }
        assert!(r.autocorrelation(0.0, 8.0) > r.autocorrelation(8.0, 0.0));
    }

    #[test]
    fn rotation_preserves_origin_value_and_h() {
        for theta in [0.3, 1.0, 2.4] {
            let r = Rotated::new(aniso(), theta);
            assert!((r.autocorrelation(0.0, 0.0) - 1.0).abs() < 1e-12);
            assert_eq!(r.params().h, aniso().params().h);
        }
    }

    #[test]
    fn effective_params_are_ellipse_projections() {
        let s = aniso(); // clx = 20, cly = 5
        // 0°: unchanged. 90°: swapped.
        assert_eq!(Rotated::new(s, 0.0).params().clx, 20.0);
        let q = Rotated::new(s, FRAC_PI_2).params();
        assert!((q.clx - 5.0).abs() < 1e-9 && (q.cly - 20.0).abs() < 1e-9);
        // 45°: both axes see the same projection.
        let d = Rotated::new(s, FRAC_PI_2 / 2.0).params();
        assert!((d.clx - d.cly).abs() < 1e-9);
        assert!(d.clx > 5.0 && d.clx < 20.0);
        // The projection always covers the inner's smaller axis and never
        // exceeds the larger one.
        for theta in [0.2, 0.9, 1.4, 2.2] {
            let p = Rotated::new(s, theta).params();
            assert!(p.clx >= 5.0 - 1e-9 && p.clx <= 20.0 + 1e-9);
        }
    }

    #[test]
    fn rotated_autocorrelation_follows_the_axis() {
        // Along the rotated long axis the decay must match the unrotated
        // long-axis decay.
        let theta = 0.7;
        let s = aniso();
        let r = Rotated::new(s, theta);
        let (sn, cs) = theta.sin_cos();
        for &d in &[3.0, 9.0, 15.0] {
            let got = r.autocorrelation(d * cs, d * sn);
            let expect = s.autocorrelation(d, 0.0);
            assert!((got - expect).abs() < 1e-12, "d={d}");
        }
    }

    #[test]
    fn isotropic_spectra_are_rotation_invariant() {
        let iso = Gaussian::new(SurfaceParams::isotropic(1.0, 10.0));
        let r = Rotated::new(iso, 1.234);
        for &(x, y) in &[(3.0, -4.0), (6.0, 6.0)] {
            assert!((r.autocorrelation(x, y) - iso.autocorrelation(x, y)).abs() < 1e-12);
            assert!((r.density(x * 0.05, y * 0.05) - iso.density(x * 0.05, y * 0.05)).abs() < 1e-15);
        }
    }

    #[test]
    fn generated_kernel_is_rotated() {
        // The kernel of a rotated spectrum must correlate along the
        // rotated axis — checked through the discrete weight array's
        // Fourier transform behaviour: density maxima move off-axis.
        let s = aniso();
        let r = Rotated::new(s, core::f64::consts::FRAC_PI_4);
        // With the long spatial axis at +45°, the *spectrum* is narrow
        // along the +45° wavevector direction: the density at a 45°
        // wavevector is below the density at the perpendicular one.
        let k = 0.15;
        let diag = r.density(k, k);
        let anti = r.density(k, -k);
        assert!(anti > diag, "rotated spectrum anisotropy: {anti} vs {diag}");
    }
}
