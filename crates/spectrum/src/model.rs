//! The spectrum families of §2.1 and their closed-form autocorrelations.

use crate::SurfaceParams;
use rrs_num::special::{bessel_k, gamma};

/// A 2-D surface spectrum with the paper's normalisation
/// `∫ W(K) dK = h²` and its exact Fourier-pair autocorrelation.
pub trait Spectrum: Send + Sync {
    /// The statistical parameters `(h, clx, cly)` the model was built with.
    fn params(&self) -> SurfaceParams;

    /// Spectral density `W(Kx, Ky)` (eqns 5, 7, 9).
    fn density(&self, kx: f64, ky: f64) -> f64;

    /// Autocorrelation `ρ(x, y)` (eqns 6, 8, 10). `ρ(0,0) = h²`.
    fn autocorrelation(&self, x: f64, y: f64) -> f64;

    /// Normalised autocorrelation `ρ(x, y)/h²`; `1` at the origin.
    fn correlation(&self, x: f64, y: f64) -> f64 {
        let v = self.params().variance();
        if v == 0.0 {
            return if x == 0.0 && y == 0.0 { 1.0 } else { 0.0 };
        }
        self.autocorrelation(x, y) / v
    }
}

/// Gaussian spectrum (eqn 5):
/// `W(K) = clx·cly·h²/(4π) · exp(-(Kx·clx/2)² − (Ky·cly/2)²)`,
/// with autocorrelation `ρ(r) = h² exp(−(x/clx)² − (y/cly)²)` (eqn 6).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Gaussian {
    /// Surface parameters.
    pub params: SurfaceParams,
}

impl Gaussian {
    /// Builds the model.
    pub fn new(params: SurfaceParams) -> Self {
        Self { params }
    }
}

impl Spectrum for Gaussian {
    fn params(&self) -> SurfaceParams {
        self.params
    }

    fn density(&self, kx: f64, ky: f64) -> f64 {
        let p = self.params;
        let ax = 0.5 * kx * p.clx;
        let ay = 0.5 * ky * p.cly;
        p.clx * p.cly * p.variance() / (4.0 * core::f64::consts::PI)
            * (-(ax * ax) - ay * ay).exp()
    }

    fn autocorrelation(&self, x: f64, y: f64) -> f64 {
        let p = self.params;
        let u = p.scaled_radius(x, y);
        p.variance() * (-u * u).exp()
    }
}

/// N-th order Power-Law spectrum (eqn 7):
/// `W(K) = clx·cly·h²·(N−1)/π · (1 + (Kx·clx)² + (Ky·cly)²)^{−N}`, `N > 1`,
/// with autocorrelation
/// `ρ(r) = h² · 2^{2−N}/Γ(N−1) · u^{N−1} · K_{N−1}(u)` (eqn 8), `u` the
/// scaled radius and `K_ν` the modified Bessel function.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerLaw {
    /// Surface parameters.
    pub params: SurfaceParams,
    /// The spectral order `N > 1`.
    pub n: f64,
}

impl PowerLaw {
    /// Validated constructor: requires `n > 1` (the spectrum is not
    /// integrable otherwise).
    pub fn try_new(params: SurfaceParams, n: f64) -> Result<Self, rrs_error::RrsError> {
        if !(n.is_finite() && n > 1.0) {
            return Err(rrs_error::RrsError::invalid_param(
                "n",
                format!("Power-Law order must satisfy N > 1, got {n}"),
            ));
        }
        Ok(Self { params, n })
    }

    /// Builds the model.
    ///
    /// # Panics
    /// Panics unless `n > 1` (the spectrum is not integrable otherwise).
    /// Fallible callers use [`PowerLaw::try_new`].
    pub fn new(params: SurfaceParams, n: f64) -> Self {
        Self::try_new(params, n).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The second-order model of the paper's Figure 2.
    pub fn second_order(params: SurfaceParams) -> Self {
        Self::new(params, 2.0)
    }

    /// The third-order model of the paper's Figure 2.
    pub fn third_order(params: SurfaceParams) -> Self {
        Self::new(params, 3.0)
    }
}

impl Spectrum for PowerLaw {
    fn params(&self) -> SurfaceParams {
        self.params
    }

    fn density(&self, kx: f64, ky: f64) -> f64 {
        let p = self.params;
        let ax = kx * p.clx;
        let ay = ky * p.cly;
        let base = 1.0 + ax * ax + ay * ay;
        p.clx * p.cly * p.variance() * (self.n - 1.0) / core::f64::consts::PI
            * base.powf(-self.n)
    }

    fn autocorrelation(&self, x: f64, y: f64) -> f64 {
        let p = self.params;
        let u = p.scaled_radius(x, y);
        let nu = self.n - 1.0;
        if u == 0.0 {
            return p.variance();
        }
        // ρ = h² · 2^{1-ν}/Γ(ν) · u^ν · K_ν(u), ν = N − 1. Evaluate the
        // u^ν·K_ν product in log space to stay stable for large u.
        let k = bessel_k(nu, u);
        if k == 0.0 {
            return 0.0;
        }
        p.variance() * (2.0f64.powf(1.0 - nu) / gamma(nu)) * u.powf(nu) * k
    }
}

/// Exponential spectrum (eqn 9):
/// `W(K) = clx·cly·h²/(2π) · (1 + (Kx·clx)² + (Ky·cly)²)^{−3/2}`,
/// with autocorrelation `ρ(r) = h² exp(−u)` (eqn 10).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Exponential {
    /// Surface parameters.
    pub params: SurfaceParams,
}

impl Exponential {
    /// Builds the model.
    pub fn new(params: SurfaceParams) -> Self {
        Self { params }
    }
}

impl Spectrum for Exponential {
    fn params(&self) -> SurfaceParams {
        self.params
    }

    fn density(&self, kx: f64, ky: f64) -> f64 {
        let p = self.params;
        let ax = kx * p.clx;
        let ay = ky * p.cly;
        let base = 1.0 + ax * ax + ay * ay;
        p.clx * p.cly * p.variance() / (2.0 * core::f64::consts::PI) * base.powf(-1.5)
    }

    fn autocorrelation(&self, x: f64, y: f64) -> f64 {
        let p = self.params;
        p.variance() * (-p.scaled_radius(x, y)).exp()
    }
}

/// A closed enumeration of the three families, for configuration,
/// serialisation, and `dyn`-free storage in kernel banks.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SpectrumModel {
    /// Gaussian family.
    Gaussian(Gaussian),
    /// Power-Law family of order `n`.
    PowerLaw(PowerLaw),
    /// Exponential family.
    Exponential(Exponential),
}

impl SpectrumModel {
    /// Gaussian model shorthand.
    pub fn gaussian(params: SurfaceParams) -> Self {
        Self::Gaussian(Gaussian::new(params))
    }

    /// Power-Law model shorthand.
    pub fn power_law(params: SurfaceParams, n: f64) -> Self {
        Self::PowerLaw(PowerLaw::new(params, n))
    }

    /// Exponential model shorthand.
    pub fn exponential(params: SurfaceParams) -> Self {
        Self::Exponential(Exponential::new(params))
    }
}

impl Spectrum for SpectrumModel {
    fn params(&self) -> SurfaceParams {
        match self {
            Self::Gaussian(m) => m.params(),
            Self::PowerLaw(m) => m.params(),
            Self::Exponential(m) => m.params(),
        }
    }

    fn density(&self, kx: f64, ky: f64) -> f64 {
        match self {
            Self::Gaussian(m) => m.density(kx, ky),
            Self::PowerLaw(m) => m.density(kx, ky),
            Self::Exponential(m) => m.density(kx, ky),
        }
    }

    fn autocorrelation(&self, x: f64, y: f64) -> f64 {
        match self {
            Self::Gaussian(m) => m.autocorrelation(x, y),
            Self::PowerLaw(m) => m.autocorrelation(x, y),
            Self::Exponential(m) => m.autocorrelation(x, y),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn integrate_density<S: Spectrum>(s: &S, kmax: f64, n: usize) -> f64 {
        // Midpoint rule over [-kmax, kmax]²; spectra are smooth and even.
        let dk = 2.0 * kmax / n as f64;
        let mut total = 0.0;
        for iy in 0..n {
            let ky = -kmax + (iy as f64 + 0.5) * dk;
            for ix in 0..n {
                let kx = -kmax + (ix as f64 + 0.5) * dk;
                total += s.density(kx, ky);
            }
        }
        total * dk * dk
    }

    fn integrate_autocorr_fourier<S: Spectrum>(s: &S, x: f64, y: f64, kmax: f64, n: usize) -> f64 {
        // ρ(r) = ∫ W(K) cos(K·r) dK (the sine part vanishes by evenness).
        let dk = 2.0 * kmax / n as f64;
        let mut total = 0.0;
        for iy in 0..n {
            let ky = -kmax + (iy as f64 + 0.5) * dk;
            for ix in 0..n {
                let kx = -kmax + (ix as f64 + 0.5) * dk;
                total += s.density(kx, ky) * (kx * x + ky * y).cos();
            }
        }
        total * dk * dk
    }

    #[test]
    fn gaussian_density_integrates_to_variance() {
        let s = Gaussian::new(SurfaceParams::new(1.5, 3.0, 5.0));
        let integral = integrate_density(&s, 6.0, 400);
        assert!((integral - 2.25).abs() < 1e-6, "∫W = {integral}");
    }

    #[test]
    fn exponential_density_integrates_to_variance() {
        let s = Exponential::new(SurfaceParams::new(2.0, 4.0, 4.0));
        // Heavy K^-3 tail: the radial mass outside the window is
        // h²/sqrt(1 + κmax²) with κmax = kmax·cl, so subtract it.
        let kmax = 40.0;
        let tail = 4.0 / (1.0 + (kmax * 4.0f64).powi(2)).sqrt();
        let integral = integrate_density(&s, kmax, 3000);
        assert!((integral - (4.0 - tail)).abs() < 0.02, "∫W = {integral}, tail = {tail}");
    }

    #[test]
    fn power_law_density_integrates_to_variance() {
        for n in [2.0, 3.0, 4.0] {
            let s = PowerLaw::new(SurfaceParams::new(1.0, 2.0, 2.0), n);
            let integral = integrate_density(&s, 60.0, 3000);
            assert!((integral - 1.0).abs() < 0.02, "N={n}: ∫W = {integral}");
        }
    }

    #[test]
    fn autocorrelation_at_origin_is_variance() {
        let p = SurfaceParams::new(1.5, 40.0, 60.0);
        assert!((Gaussian::new(p).autocorrelation(0.0, 0.0) - 2.25).abs() < 1e-12);
        assert!((Exponential::new(p).autocorrelation(0.0, 0.0) - 2.25).abs() < 1e-12);
        assert!((PowerLaw::new(p, 2.0).autocorrelation(0.0, 0.0) - 2.25).abs() < 1e-12);
        assert!((PowerLaw::new(p, 3.5).autocorrelation(0.0, 0.0) - 2.25).abs() < 1e-12);
    }

    #[test]
    fn power_law_autocorrelation_continuous_at_origin() {
        // ρ(u→0) must approach ρ(0) smoothly — checks the Bessel limit.
        for n in [2.0, 3.0, 2.5] {
            let s = PowerLaw::new(SurfaceParams::isotropic(1.0, 10.0), n);
            let near = s.autocorrelation(1e-4, 0.0);
            assert!((near - 1.0).abs() < 1e-3, "N={n}: ρ(ε)={near}");
        }
    }

    #[test]
    fn gaussian_autocorrelation_matches_fourier_transform() {
        let s = Gaussian::new(SurfaceParams::new(1.0, 3.0, 3.0));
        for &(x, y) in &[(0.0, 0.0), (1.0, 0.0), (2.0, 2.0), (0.0, 4.0)] {
            let direct = s.autocorrelation(x, y);
            let fourier = integrate_autocorr_fourier(&s, x, y, 6.0, 500);
            assert!((direct - fourier).abs() < 1e-5, "({x},{y}): {direct} vs {fourier}");
        }
    }

    #[test]
    fn exponential_autocorrelation_matches_fourier_transform() {
        let s = Exponential::new(SurfaceParams::new(1.0, 5.0, 5.0));
        for &(x, y) in &[(0.0, 2.0), (3.0, 0.0), (4.0, 4.0)] {
            let direct = s.autocorrelation(x, y);
            let fourier = integrate_autocorr_fourier(&s, x, y, 30.0, 2500);
            assert!((direct - fourier).abs() < 5e-3, "({x},{y}): {direct} vs {fourier}");
        }
    }

    #[test]
    fn power_law_autocorrelation_matches_fourier_transform() {
        // This is the strongest check of the K_ν-based closed form.
        let s = PowerLaw::new(SurfaceParams::new(1.0, 4.0, 4.0), 2.0);
        for &(x, y) in &[(1.0, 0.0), (2.0, 2.0), (0.0, 6.0)] {
            let direct = s.autocorrelation(x, y);
            let fourier = integrate_autocorr_fourier(&s, x, y, 30.0, 2500);
            assert!((direct - fourier).abs() < 5e-3, "({x},{y}): {direct} vs {fourier}");
        }
    }

    #[test]
    fn anisotropy_shows_in_both_density_and_autocorrelation() {
        let s = Gaussian::new(SurfaceParams::new(1.0, 10.0, 2.0));
        // Longer correlation along x ⇒ slower decay of ρ along x.
        assert!(s.autocorrelation(5.0, 0.0) > s.autocorrelation(0.0, 5.0));
        // ...and a narrower spectrum along Kx.
        assert!(s.density(0.5, 0.0) < s.density(0.0, 0.5));
    }

    #[test]
    fn exponential_equals_power_law_three_halves() {
        let p = SurfaceParams::isotropic(1.3, 7.0);
        let e = Exponential::new(p);
        let pl = PowerLaw::new(p, 1.5);
        for &(kx, ky) in &[(0.0, 0.0), (0.1, 0.2), (1.0, 0.5)] {
            assert!((e.density(kx, ky) - pl.density(kx, ky)).abs() < 1e-12);
        }
        for &(x, y) in &[(1.0, 0.0), (3.0, 4.0)] {
            let d = (e.autocorrelation(x, y) - pl.autocorrelation(x, y)).abs();
            assert!(d < 1e-9, "lag ({x},{y}) differs by {d}");
        }
    }

    #[test]
    fn model_enum_delegates() {
        let p = SurfaceParams::isotropic(1.0, 5.0);
        let m = SpectrumModel::gaussian(p);
        let g = Gaussian::new(p);
        assert_eq!(m.density(0.3, 0.4), g.density(0.3, 0.4));
        assert_eq!(m.autocorrelation(1.0, 2.0), g.autocorrelation(1.0, 2.0));
        assert_eq!(m.params(), p);
    }

    #[test]
    fn correlation_is_normalised() {
        let s = Exponential::new(SurfaceParams::isotropic(2.5, 8.0));
        assert!((s.correlation(0.0, 0.0) - 1.0).abs() < 1e-12);
        assert!((s.correlation(8.0, 0.0) - (-1.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "N > 1")]
    fn power_law_order_one_rejected() {
        PowerLaw::new(SurfaceParams::isotropic(1.0, 1.0), 1.0);
    }

    #[test]
    fn spectra_are_even_functions() {
        let p = SurfaceParams::new(1.0, 3.0, 7.0);
        let models: Vec<SpectrumModel> = vec![
            SpectrumModel::gaussian(p),
            SpectrumModel::power_law(p, 2.0),
            SpectrumModel::exponential(p),
        ];
        for m in &models {
            for &(kx, ky) in &[(0.2, 0.7), (1.0, -0.4)] {
                assert_eq!(m.density(kx, ky), m.density(-kx, -ky));
                assert_eq!(m.density(kx, ky), m.density(-kx, ky));
            }
        }
    }
}
