//! Discrete spectral weighting arrays (paper §2.2).
//!
//! Sampling the spectral density on the DFT frequency lattice
//! `K_m = 2πm'/L` (eqn 13, folded by eqn 16) and scaling by the spectral
//! cell area gives the weighting array (eqn 15)
//!
//! ```text
//! w[mx, my] = (4π² / (Lx·Ly)) · W(K_mx', K_my')
//! ```
//!
//! whose entries sum to `h²` (the discrete form of `∫W dK = h²`) and whose
//! DFT reproduces the autocorrelation, `DFT(w) ≈ ρ(r)` — the accuracy
//! check the paper recommends, implemented here as [`verify_weight_dft`].
//! The amplitude array `v = √w` (eqn 17) feeds both generation methods.

use crate::model::Spectrum;
use rrs_error::RrsError;
use rrs_fft::spectral::angular_frequency;
use rrs_fft::{Direction, FftPlanCache};
use rrs_grid::Grid2;
use rrs_num::Complex64;

/// The sampling lattice of a discrete surface or kernel: `nx × ny` samples
/// at spacings `dx`, `dy`, so domain lengths are `Lx = nx·dx`, `Ly = ny·dy`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GridSpec {
    /// Samples along `x`; must be even (the lattice is `2Mx` bins).
    pub nx: usize,
    /// Samples along `y`; must be even.
    pub ny: usize,
    /// Sample spacing along `x`.
    pub dx: f64,
    /// Sample spacing along `y`.
    pub dy: f64,
}

impl GridSpec {
    /// Validated lattice with explicit spacings: both dimensions must be
    /// even and ≥ 2, both spacings positive and finite.
    pub fn try_new(nx: usize, ny: usize, dx: f64, dy: f64) -> Result<Self, RrsError> {
        if !(nx >= 2 && nx % 2 == 0) {
            return Err(RrsError::invalid_param(
                "nx",
                format!("nx must be even and >= 2, got {nx}"),
            ));
        }
        if !(ny >= 2 && ny % 2 == 0) {
            return Err(RrsError::invalid_param(
                "ny",
                format!("ny must be even and >= 2, got {ny}"),
            ));
        }
        if !(dx > 0.0 && dx.is_finite()) {
            return Err(RrsError::invalid_param("dx", format!("dx must be positive, got {dx}")));
        }
        if !(dy > 0.0 && dy.is_finite()) {
            return Err(RrsError::invalid_param("dy", format!("dy must be positive, got {dy}")));
        }
        Ok(Self { nx, ny, dx, dy })
    }

    /// Validated unit-spacing lattice.
    pub fn try_unit(nx: usize, ny: usize) -> Result<Self, RrsError> {
        Self::try_new(nx, ny, 1.0, 1.0)
    }

    /// A lattice with explicit spacings.
    ///
    /// # Panics
    /// Panics unless both dimensions are even and ≥ 2 and spacings are
    /// positive. Fallible callers use [`GridSpec::try_new`].
    pub fn new(nx: usize, ny: usize, dx: f64, dy: f64) -> Self {
        Self::try_new(nx, ny, dx, dy).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Unit-spacing lattice — the paper's convention.
    pub fn unit(nx: usize, ny: usize) -> Self {
        Self::new(nx, ny, 1.0, 1.0)
    }

    /// Domain length along `x` (`Lx = nx·dx`).
    #[inline]
    pub fn lx(&self) -> f64 {
        self.nx as f64 * self.dx
    }

    /// Domain length along `y`.
    #[inline]
    pub fn ly(&self) -> f64 {
        self.ny as f64 * self.dy
    }

    /// Half-sizes `(Mx, My)` of the frequency lattice.
    #[inline]
    pub fn half(&self) -> (usize, usize) {
        (self.nx / 2, self.ny / 2)
    }

    /// Signed physical frequency of DFT bin `m` on an axis with `n` bins
    /// and domain length `l` (bins above `n/2` are negative frequencies).
    /// The spectra here are even, so callers may also use the folded
    /// magnitude; this helper exists for general diagnostics.
    pub fn signed_frequency(m: usize, n: usize, l: f64) -> f64 {
        debug_assert!(m < n);
        if m <= n / 2 {
            angular_frequency(m, l)
        } else {
            -angular_frequency(n - m, l)
        }
    }
}

/// Builds the weighting array `w` of eqn (15) in DFT bin order.
///
/// `w[mx, my] = 4π²/(Lx·Ly) · W(K_fold(mx), K_fold(my))`; all entries are
/// non-negative and `Σw ≈ h²` (up to spectral truncation at the Nyquist
/// frequency).
pub fn weight_array<S: Spectrum + ?Sized>(spectrum: &S, spec: GridSpec) -> Grid2<f64> {
    let cell = 4.0 * core::f64::consts::PI * core::f64::consts::PI / (spec.lx() * spec.ly());
    Grid2::from_fn(spec.nx, spec.ny, |ix, iy| {
        // Signed frequencies: W is even under K → −K (always true for a
        // real field) but NOT necessarily under kx → −kx alone (rotated
        // anisotropy breaks quadrant symmetry), so folding to magnitudes
        // would be wrong here.
        let kx = GridSpec::signed_frequency(ix, spec.nx, spec.lx());
        let ky = GridSpec::signed_frequency(iy, spec.ny, spec.ly());
        let w = cell * spectrum.density(kx, ky);
        debug_assert!(w >= 0.0, "negative spectral density at bin ({ix},{iy})");
        w
    })
}

/// The amplitude array `v = √w` of eqn (17).
pub fn amplitude_array<S: Spectrum + ?Sized>(spectrum: &S, spec: GridSpec) -> Grid2<f64> {
    let mut v = weight_array(spectrum, spec);
    for z in v.as_mut_slice() {
        *z = z.sqrt();
    }
    v
}

/// The paper's §2.2 accuracy check: transforms `w` and compares against the
/// closed-form autocorrelation at every lag.
///
/// Returns the maximum absolute error normalised by `h²`. For an adequately
/// sampled spectrum this is small (≲ 1e-3); it grows when the correlation
/// length approaches the sample spacing (aliasing) or the domain length
/// (truncation), which is exactly what the check is for.
pub fn verify_weight_dft<S: Spectrum + ?Sized>(spectrum: &S, spec: GridSpec) -> f64 {
    let w = weight_array(spectrum, spec);
    let mut buf: Vec<Complex64> =
        w.as_slice().iter().map(|&x| Complex64::from_re(x)).collect();
    // Verification sweeps re-check the same lattice for many spectra;
    // the process-wide plan cache amortises the transform setup.
    FftPlanCache::global().plan(spec.nx, spec.ny, 1).process(&mut buf, Direction::Forward);
    let h2 = spectrum.params().variance().max(f64::MIN_POSITIVE);
    // Signed lags: bin n carries the displacement n (n ≤ N/2) or n − N.
    let signed_lag = |m: usize, n: usize| -> f64 {
        if m <= n / 2 { m as f64 } else { m as f64 - n as f64 }
    };
    let mut max_err: f64 = 0.0;
    for iy in 0..spec.ny {
        let ry = signed_lag(iy, spec.ny) * spec.dy;
        for ix in 0..spec.nx {
            let rx = signed_lag(ix, spec.nx) * spec.dx;
            let got = buf[iy * spec.nx + ix];
            let expect = spectrum.autocorrelation(rx, ry);
            let err = (got.re - expect).abs().max(got.im.abs());
            max_err = max_err.max(err / h2);
        }
    }
    max_err
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Exponential, Gaussian, PowerLaw};
    use crate::SurfaceParams;

    #[test]
    fn weights_sum_to_variance() {
        let p = SurfaceParams::isotropic(1.5, 8.0);
        let spec = GridSpec::unit(128, 128);
        let w = weight_array(&Gaussian::new(p), spec);
        let total: f64 = rrs_num::kahan::sum(w.as_slice());
        assert!((total - p.variance()).abs() < 1e-6 * p.variance(), "Σw = {total}");
    }

    #[test]
    fn weights_sum_heavy_tail_within_truncation() {
        // The Exponential spectrum decays like K^-3: Nyquist truncation
        // leaves a visible but bounded deficit.
        let p = SurfaceParams::isotropic(1.0, 10.0);
        let spec = GridSpec::unit(256, 256);
        let w = weight_array(&Exponential::new(p), spec);
        let total: f64 = rrs_num::kahan::sum(w.as_slice());
        assert!(total > 0.95 && total <= 1.001, "Σw = {total}");
    }

    #[test]
    fn weight_array_is_symmetric_under_folding() {
        let p = SurfaceParams::new(1.0, 6.0, 9.0);
        let spec = GridSpec::unit(32, 16);
        let w = weight_array(&PowerLaw::new(p, 2.0), spec);
        // Bin m and bin N−m carry the same |K| and thus the same weight.
        for iy in 1..spec.ny {
            for ix in 1..spec.nx {
                let a = *w.get(ix, iy);
                let b = *w.get(spec.nx - ix, spec.ny - iy);
                assert!((a - b).abs() < 1e-15, "bins ({ix},{iy})");
            }
        }
    }

    #[test]
    fn amplitude_is_sqrt_of_weight() {
        let p = SurfaceParams::isotropic(2.0, 5.0);
        let spec = GridSpec::unit(16, 16);
        let s = Gaussian::new(p);
        let w = weight_array(&s, spec);
        let v = amplitude_array(&s, spec);
        for (a, b) in v.as_slice().iter().zip(w.as_slice()) {
            assert!((a * a - b).abs() < 1e-15);
        }
    }

    #[test]
    fn dft_of_weights_reproduces_gaussian_autocorrelation() {
        // The paper's own §2.2 accuracy check.
        let p = SurfaceParams::isotropic(1.0, 10.0);
        let err = verify_weight_dft(&Gaussian::new(p), GridSpec::unit(128, 128));
        assert!(err < 1e-6, "max relative error {err}");
    }

    #[test]
    fn dft_of_weights_reproduces_exponential_autocorrelation() {
        let p = SurfaceParams::isotropic(1.0, 10.0);
        let err = verify_weight_dft(&Exponential::new(p), GridSpec::unit(256, 256));
        // Heavy spectral tail: a percent-level plateau from truncation.
        assert!(err < 0.05, "max relative error {err}");
    }

    #[test]
    fn dft_of_weights_reproduces_power_law_autocorrelation() {
        let p = SurfaceParams::isotropic(1.0, 10.0);
        for n in [2.0, 3.0] {
            let err = verify_weight_dft(&PowerLaw::new(p, n), GridSpec::unit(256, 256));
            assert!(err < 0.05, "N={n}: max relative error {err}");
        }
    }

    #[test]
    fn check_degrades_when_undersampled() {
        // cl comparable to dx ⇒ aliasing ⇒ the check must flag it.
        let good = verify_weight_dft(
            &Gaussian::new(SurfaceParams::isotropic(1.0, 10.0)),
            GridSpec::unit(64, 64),
        );
        let bad = verify_weight_dft(
            &Gaussian::new(SurfaceParams::isotropic(1.0, 1.0)),
            GridSpec::unit(64, 64),
        );
        assert!(bad > good * 10.0, "good={good}, bad={bad}");
    }

    #[test]
    fn anisotropic_weights_follow_axes() {
        let p = SurfaceParams::new(1.0, 16.0, 4.0);
        let spec = GridSpec::unit(64, 64);
        let w = weight_array(&Gaussian::new(p), spec);
        // Larger clx narrows the spectrum along Kx: weight at (4, 0) bins
        // must be below weight at (0, 4).
        assert!(*w.get(4, 0) < *w.get(0, 4));
    }

    #[test]
    fn signed_frequency_layout() {
        let l = 8.0;
        assert_eq!(GridSpec::signed_frequency(0, 8, l), 0.0);
        assert!(GridSpec::signed_frequency(1, 8, l) > 0.0);
        assert!(GridSpec::signed_frequency(7, 8, l) < 0.0);
        assert!(
            (GridSpec::signed_frequency(1, 8, l) + GridSpec::signed_frequency(7, 8, l)).abs()
                < 1e-15
        );
    }

    #[test]
    fn grid_spec_lengths() {
        let s = GridSpec::new(64, 32, 0.5, 2.0);
        assert_eq!(s.lx(), 32.0);
        assert_eq!(s.ly(), 64.0);
        assert_eq!(s.half(), (32, 16));
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn odd_dimension_rejected() {
        GridSpec::unit(15, 16);
    }
}
