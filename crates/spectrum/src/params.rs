//! Statistical surface parameters.

use rrs_error::RrsError;

/// The three statistical parameters of a homogeneous rough surface: height
/// standard deviation `h` and the correlation lengths `clx`, `cly` along
/// the two axes (grid units).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SurfaceParams {
    /// Standard deviation of height, `h` in the paper.
    pub h: f64,
    /// Correlation length along `x` (`cl_x`).
    pub clx: f64,
    /// Correlation length along `y` (`cl_y`).
    pub cly: f64,
}

impl SurfaceParams {
    /// Validated anisotropic parameters: `h` must be finite and
    /// non-negative, both correlation lengths finite and positive.
    pub fn try_new(h: f64, clx: f64, cly: f64) -> Result<Self, RrsError> {
        if !(h.is_finite() && h >= 0.0) {
            return Err(RrsError::invalid_param(
                "h",
                format!("h must be finite and non-negative, got {h}"),
            ));
        }
        if !(clx.is_finite() && clx > 0.0) {
            return Err(RrsError::invalid_param(
                "clx",
                format!("clx must be finite and positive, got {clx}"),
            ));
        }
        if !(cly.is_finite() && cly > 0.0) {
            return Err(RrsError::invalid_param(
                "cly",
                format!("cly must be finite and positive, got {cly}"),
            ));
        }
        Ok(Self { h, clx, cly })
    }

    /// Validated isotropic parameters (`clx == cly == cl`).
    pub fn try_isotropic(h: f64, cl: f64) -> Result<Self, RrsError> {
        Self::try_new(h, cl, cl)
    }

    /// Anisotropic parameters.
    ///
    /// # Panics
    /// Panics unless `h >= 0` and both correlation lengths are positive
    /// and finite. Fallible callers use [`SurfaceParams::try_new`].
    pub fn new(h: f64, clx: f64, cly: f64) -> Self {
        Self::try_new(h, clx, cly).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Isotropic parameters (`clx == cly == cl`), the form used in all of
    /// the paper's numerical examples.
    pub fn isotropic(h: f64, cl: f64) -> Self {
        Self::new(h, cl, cl)
    }

    /// The scaled radius `u = sqrt((x/clx)² + (y/cly)²)` at lag `(x, y)`
    /// — the argument of every autocorrelation family.
    #[inline]
    pub fn scaled_radius(&self, x: f64, y: f64) -> f64 {
        let ux = x / self.clx;
        let uy = y / self.cly;
        (ux * ux + uy * uy).sqrt()
    }

    /// Height variance `h²`.
    #[inline]
    pub fn variance(&self) -> f64 {
        self.h * self.h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isotropic_sets_both_lengths() {
        let p = SurfaceParams::isotropic(1.5, 40.0);
        assert_eq!(p.clx, 40.0);
        assert_eq!(p.cly, 40.0);
        assert_eq!(p.h, 1.5);
        assert_eq!(p.variance(), 2.25);
    }

    #[test]
    fn scaled_radius_matches_hand_computation() {
        let p = SurfaceParams::new(1.0, 2.0, 4.0);
        let u = p.scaled_radius(2.0, 4.0);
        assert!((u - 2.0f64.sqrt()).abs() < 1e-15);
        assert_eq!(p.scaled_radius(0.0, 0.0), 0.0);
    }

    #[test]
    fn zero_height_is_allowed() {
        // A perfectly flat "rough" surface is a valid degenerate case.
        let p = SurfaceParams::isotropic(0.0, 10.0);
        assert_eq!(p.variance(), 0.0);
    }

    #[test]
    #[should_panic(expected = "clx must be finite and positive")]
    fn zero_correlation_length_rejected() {
        SurfaceParams::new(1.0, 0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "h must be finite")]
    fn nan_height_rejected() {
        SurfaceParams::new(f64::NAN, 1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "cly must be finite")]
    fn infinite_length_rejected() {
        SurfaceParams::new(1.0, 1.0, f64::INFINITY);
    }
}
