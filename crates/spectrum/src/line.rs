//! One-dimensional rough *profile* spectra.
//!
//! The paper's companion studies (its refs [8]–[12]) analyse wave
//! propagation along 1-D height profiles. This module provides the 1-D
//! analogue of the 2-D machinery with the same conventions:
//!
//! ```text
//! ∫ W(k) dk = h²,   ρ(x) = ∫ W(k) e^{jkx} dk,   ρ(0) = h²
//! ```
//!
//! | family | `W(k)` | `ρ(x)` |
//! |---|---|---|
//! | [`Gaussian1d`] | `h²·cl/(2√π) · exp(−(k·cl/2)²)` | `h² exp(−(x/cl)²)` |
//! | [`Exponential1d`] | `h²·cl/π / (1 + (k·cl)²)` | `h² exp(−|x|/cl)` |
//!
//! and the discrete weighting/amplitude arrays of the paper's eqns
//! (15)/(17) reduced to one axis.

use rrs_fft::spectral::{angular_frequency, fold_index};

/// Statistical parameters of a 1-D profile.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LineParams {
    /// Height standard deviation.
    pub h: f64,
    /// Correlation length.
    pub cl: f64,
}

impl LineParams {
    /// Validated constructor.
    ///
    /// # Panics
    /// Panics unless `h ≥ 0` and `cl > 0`, both finite.
    pub fn new(h: f64, cl: f64) -> Self {
        assert!(h.is_finite() && h >= 0.0, "h must be finite and non-negative, got {h}");
        assert!(cl.is_finite() && cl > 0.0, "cl must be finite and positive, got {cl}");
        Self { h, cl }
    }

    /// Height variance `h²`.
    #[inline]
    pub fn variance(&self) -> f64 {
        self.h * self.h
    }
}

/// A 1-D profile spectrum with `∫W dk = h²`.
pub trait Spectrum1d: Send + Sync {
    /// The parameters the model was built with.
    fn params(&self) -> LineParams;
    /// Spectral density `W(k)`.
    fn density(&self, k: f64) -> f64;
    /// Autocorrelation `ρ(x)`; `ρ(0) = h²`.
    fn autocorrelation(&self, x: f64) -> f64;
}

/// Gaussian 1-D spectrum.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Gaussian1d {
    /// Profile parameters.
    pub params: LineParams,
}

impl Gaussian1d {
    /// Builds the model.
    pub fn new(params: LineParams) -> Self {
        Self { params }
    }
}

impl Spectrum1d for Gaussian1d {
    fn params(&self) -> LineParams {
        self.params
    }

    fn density(&self, k: f64) -> f64 {
        let p = self.params;
        let a = 0.5 * k * p.cl;
        p.variance() * p.cl / (2.0 * core::f64::consts::PI.sqrt()) * (-a * a).exp()
    }

    fn autocorrelation(&self, x: f64) -> f64 {
        let p = self.params;
        let u = x / p.cl;
        p.variance() * (-u * u).exp()
    }
}

/// Exponential 1-D spectrum (Lorentzian density).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Exponential1d {
    /// Profile parameters.
    pub params: LineParams,
}

impl Exponential1d {
    /// Builds the model.
    pub fn new(params: LineParams) -> Self {
        Self { params }
    }
}

impl Spectrum1d for Exponential1d {
    fn params(&self) -> LineParams {
        self.params
    }

    fn density(&self, k: f64) -> f64 {
        let p = self.params;
        let a = k * p.cl;
        p.variance() * p.cl / core::f64::consts::PI / (1.0 + a * a)
    }

    fn autocorrelation(&self, x: f64) -> f64 {
        let p = self.params;
        p.variance() * (-(x / p.cl).abs()).exp()
    }
}

/// The 1-D weighting array `w[m] = (2π/L)·W(k_m')` in DFT bin order (the
/// one-axis reduction of eqn 15). `n` must be even, `dx > 0`.
pub fn weight_array_1d<S: Spectrum1d + ?Sized>(spectrum: &S, n: usize, dx: f64) -> Vec<f64> {
    assert!(n >= 2 && n % 2 == 0, "n must be even and >= 2, got {n}");
    assert!(dx > 0.0 && dx.is_finite(), "dx must be positive");
    let l = n as f64 * dx;
    let cell = core::f64::consts::TAU / l;
    let half = n / 2;
    (0..n)
        .map(|m| {
            let k = angular_frequency(fold_index(m, half), l);
            cell * spectrum.density(k)
        })
        .collect()
}

/// The 1-D amplitude array `v = √w` (eqn 17, one axis).
pub fn amplitude_array_1d<S: Spectrum1d + ?Sized>(spectrum: &S, n: usize, dx: f64) -> Vec<f64> {
    weight_array_1d(spectrum, n, dx).into_iter().map(f64::sqrt).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn densities_integrate_to_variance() {
        let integrate = |f: &dyn Fn(f64) -> f64, kmax: f64, n: usize| -> f64 {
            let dk = 2.0 * kmax / n as f64;
            (0..n).map(|i| f(-kmax + (i as f64 + 0.5) * dk)).sum::<f64>() * dk
        };
        let g = Gaussian1d::new(LineParams::new(1.5, 8.0));
        let ig = integrate(&|k| g.density(k), 4.0, 4000);
        assert!((ig - 2.25).abs() < 1e-8, "gaussian ∫W = {ig}");
        let e = Exponential1d::new(LineParams::new(2.0, 5.0));
        let ie = integrate(&|k| e.density(k), 400.0, 400_000);
        assert!((ie - 4.0).abs() < 0.02, "exponential ∫W = {ie}");
    }

    #[test]
    fn autocorrelations_match_fourier_transform() {
        let check = |s: &dyn Spectrum1d, x: f64, kmax: f64, n: usize, tol: f64| {
            let dk = 2.0 * kmax / n as f64;
            let fourier: f64 = (0..n)
                .map(|i| {
                    let k = -kmax + (i as f64 + 0.5) * dk;
                    s.density(k) * (k * x).cos()
                })
                .sum::<f64>()
                * dk;
            let direct = s.autocorrelation(x);
            assert!((fourier - direct).abs() < tol, "x={x}: {fourier} vs {direct}");
        };
        let g = Gaussian1d::new(LineParams::new(1.0, 6.0));
        for x in [0.0, 2.0, 6.0, 12.0] {
            check(&g, x, 4.0, 4000, 1e-8);
        }
        let e = Exponential1d::new(LineParams::new(1.0, 6.0));
        for x in [0.0, 3.0, 6.0, 18.0] {
            check(&e, x, 300.0, 300_000, 1e-2);
        }
    }

    #[test]
    fn weights_sum_to_variance() {
        let g = Gaussian1d::new(LineParams::new(1.3, 10.0));
        let w = weight_array_1d(&g, 256, 1.0);
        let total: f64 = w.iter().sum();
        assert!((total - 1.69).abs() < 1e-9, "Σw = {total}");
        assert!(w.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn weights_are_symmetric() {
        let e = Exponential1d::new(LineParams::new(1.0, 7.0));
        let w = weight_array_1d(&e, 64, 1.0);
        for m in 1..64 {
            assert!((w[m] - w[64 - m]).abs() < 1e-15, "bin {m}");
        }
    }

    #[test]
    fn amplitude_squares_back() {
        let g = Gaussian1d::new(LineParams::new(0.8, 4.0));
        let w = weight_array_1d(&g, 32, 1.0);
        let v = amplitude_array_1d(&g, 32, 1.0);
        for (a, b) in v.iter().zip(&w) {
            assert!((a * a - b).abs() < 1e-15);
        }
    }

    #[test]
    #[should_panic(expected = "cl must be finite and positive")]
    fn bad_params_rejected() {
        LineParams::new(1.0, 0.0);
    }
}
