//! Spectral density models for random rough surfaces (paper §2.1–2.2).
//!
//! A 2-D random rough surface is characterised by its spectral density
//! function `W(K)` normalised so that `∫ W(K) dK = h²` (eqn 1), with `h`
//! the height standard deviation, and by the autocorrelation
//! `ρ(r) = ∫ W(K) e^{jK·r} dK` (eqn 4), so `ρ(0) = h²`.
//!
//! Three closed-form families are implemented, each anisotropic through
//! separate correlation lengths `clx`, `cly`:
//!
//! | family | `W(K)` ∝ | `ρ(r)` |
//! |---|---|---|
//! | [`Gaussian`] | `exp(-(Kx·clx/2)² - (Ky·cly/2)²)` | `h² exp(-u²)` |
//! | [`PowerLaw`] | `(1 + (Kx·clx)² + (Ky·cly)²)^{-N}` | `h² 2^{2-N}/Γ(N-1) · u^{N-1} K_{N-1}(u)` |
//! | [`Exponential`] | `(1 + (Kx·clx)² + (Ky·cly)²)^{-3/2}` | `h² exp(-u)` |
//!
//! with `u = sqrt((x/clx)² + (y/cly)²)` the scaled radius. (The Exponential
//! spectrum is the `N = 3/2` Power-Law; both are kept because the paper
//! treats them as distinct families.)
//!
//! The [`discrete`] module turns a continuous spectrum into the discrete
//! weighting array `w` of eqn (15) and its square root `v` (eqn 17), and
//! implements the paper's accuracy check `DFT(w) ≈ ρ(r)` (§2.2).

#![warn(missing_docs)]

pub mod discrete;
pub mod line;
pub mod mixture;
pub mod model;
pub mod params;
pub mod rotated;

pub use discrete::{amplitude_array, verify_weight_dft, weight_array, GridSpec};
pub use model::{Exponential, Gaussian, PowerLaw, Spectrum, SpectrumModel};
pub use mixture::Mixture;
pub use params::SurfaceParams;
pub use rotated::Rotated;
pub use rrs_error::RrsError;
