//! Mixture spectra — multi-scale composite surfaces.
//!
//! Sea-like and terrain-like surfaces are often *two-scale*: long swell
//! carrying short ripple (the composite/two-scale model of the rough
//! surface scattering literature the paper builds on). Spectra add under
//! superposition of independent components:
//!
//! ```text
//! W(K) = Σᵢ Wᵢ(K),   ρ(r) = Σᵢ ρᵢ(r),   h² = Σᵢ hᵢ²
//! ```
//!
//! so a [`Mixture`] is itself a valid [`Spectrum`] and drops into every
//! generator. Kernel auto-sizing uses the *largest* component correlation
//! length (the kernel must span the slowest-decaying correlation).

use crate::model::{Spectrum, SpectrumModel};
use crate::SurfaceParams;

/// A superposition of independent spectrum components.
#[derive(Clone, Debug, PartialEq)]
pub struct Mixture {
    components: Vec<SpectrumModel>,
}

impl Mixture {
    /// Builds a mixture.
    ///
    /// # Panics
    /// Panics on an empty component list.
    pub fn new(components: Vec<SpectrumModel>) -> Self {
        assert!(!components.is_empty(), "a mixture needs at least one component");
        Self { components }
    }

    /// The components.
    pub fn components(&self) -> &[SpectrumModel] {
        &self.components
    }

    /// A classic two-scale sea model: long-wavelength Gaussian swell plus
    /// short-wavelength Exponential ripple.
    pub fn two_scale(swell: SurfaceParams, ripple: SurfaceParams) -> Self {
        Self::new(vec![
            SpectrumModel::gaussian(swell),
            SpectrumModel::exponential(ripple),
        ])
    }
}

impl Spectrum for Mixture {
    fn params(&self) -> SurfaceParams {
        // h adds in quadrature; correlation lengths take the maximum so
        // kernel sizing spans the slowest-decaying component.
        let h2: f64 = self.components.iter().map(|c| c.params().variance()).sum();
        let clx = self
            .components
            .iter()
            .map(|c| c.params().clx)
            .fold(0.0f64, f64::max);
        let cly = self
            .components
            .iter()
            .map(|c| c.params().cly)
            .fold(0.0f64, f64::max);
        SurfaceParams::new(h2.sqrt(), clx, cly)
    }

    fn density(&self, kx: f64, ky: f64) -> f64 {
        self.components.iter().map(|c| c.density(kx, ky)).sum()
    }

    fn autocorrelation(&self, x: f64, y: f64) -> f64 {
        self.components.iter().map(|c| c.autocorrelation(x, y)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_scale() -> Mixture {
        Mixture::two_scale(
            SurfaceParams::isotropic(1.0, 40.0), // swell
            SurfaceParams::isotropic(0.3, 4.0),  // ripple
        )
    }

    #[test]
    fn variance_adds_in_quadrature() {
        let m = two_scale();
        let p = m.params();
        assert!((p.variance() - (1.0 + 0.09)).abs() < 1e-12);
        assert!((m.autocorrelation(0.0, 0.0) - 1.09).abs() < 1e-12);
    }

    #[test]
    fn sizing_params_span_the_longest_component() {
        let p = two_scale().params();
        assert_eq!(p.clx, 40.0);
        assert_eq!(p.cly, 40.0);
    }

    #[test]
    fn density_and_autocorrelation_are_sums() {
        let m = two_scale();
        let [a, b] = [m.components()[0], m.components()[1]];
        for &(kx, ky) in &[(0.0, 0.0), (0.1, 0.2), (0.8, -0.3)] {
            assert!((m.density(kx, ky) - (a.density(kx, ky) + b.density(kx, ky))).abs() < 1e-15);
        }
        for &(x, y) in &[(5.0, 0.0), (0.0, 30.0), (10.0, 10.0)] {
            let expect = a.autocorrelation(x, y) + b.autocorrelation(x, y);
            assert!((m.autocorrelation(x, y) - expect).abs() < 1e-15);
        }
    }

    #[test]
    fn mixture_shows_both_scales_in_correlation() {
        // At small lags the ripple contributes; by lag 3·cl_ripple it is
        // gone and only the swell correlation remains.
        let m = two_scale();
        let swell = m.components()[0];
        let at_12 = m.autocorrelation(12.0, 0.0);
        assert!((at_12 - swell.autocorrelation(12.0, 0.0)).abs() < 0.01 * 1.09);
        // At the origin the mixture exceeds the swell alone by h_ripple².
        assert!((m.autocorrelation(0.0, 0.0) - swell.autocorrelation(0.0, 0.0) - 0.09).abs() < 1e-12);
    }

    #[test]
    fn mixture_kernel_generates_correct_variance() {
        use crate::discrete::GridSpec;
        let m = two_scale();
        let w = crate::weight_array(&m, GridSpec::unit(512, 512));
        let total: f64 = w.as_slice().iter().sum();
        // Ripple (exponential, cl=4) loses ~1/(π·4)≈8% of its 0.09 to the
        // Nyquist tail; the swell is exact.
        assert!((total - 1.09).abs() < 0.02, "Σw = {total}");
    }

    #[test]
    #[should_panic(expected = "at least one component")]
    fn empty_mixture_rejected() {
        Mixture::new(vec![]);
    }
}
