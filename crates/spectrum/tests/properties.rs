//! Property-based tests for the spectrum models and discrete arrays.

use rrs_check::{map, Gen};
use rrs_spectrum::{
    amplitude_array, weight_array, Exponential, Gaussian, GridSpec, PowerLaw, Rotated, Spectrum,
    SpectrumModel, SurfaceParams,
};

fn arb_params() -> impl Gen<Value = SurfaceParams> {
    map((0.05f64..5.0, 1.0f64..30.0, 1.0f64..30.0), |(h, clx, cly)| {
        SurfaceParams::new(h, clx, cly)
    })
}

fn arb_model() -> impl Gen<Value = SpectrumModel> {
    map((arb_params(), 0u8..4), |(p, fam)| match fam {
        0 => SpectrumModel::gaussian(p),
        1 => SpectrumModel::power_law(p, 2.0),
        2 => SpectrumModel::power_law(p, 3.0),
        _ => SpectrumModel::exponential(p),
    })
}

rrs_check::props! {
    #![cases = 128]

    fn density_is_non_negative_and_even(m in arb_model(), kx in -3.0f64..3.0, ky in -3.0f64..3.0) {
        let w = m.density(kx, ky);
        assert!(w >= 0.0 && w.is_finite());
        assert!((w - m.density(-kx, -ky)).abs() < 1e-12 * w.max(1e-300));
    }

    fn density_peaks_at_origin(m in arb_model(), kx in -3.0f64..3.0, ky in -3.0f64..3.0) {
        assert!(m.density(0.0, 0.0) >= m.density(kx, ky));
    }

    fn autocorrelation_is_bounded_by_variance(m in arb_model(), x in -100.0f64..100.0, y in -100.0f64..100.0) {
        let rho = m.autocorrelation(x, y);
        let v = m.params().variance();
        assert!(rho.is_finite());
        assert!(rho <= v + 1e-12 * v.max(1.0), "ρ({x},{y}) = {rho} exceeds h² = {v}");
        assert!(rho >= -1e-12, "all three families are non-negative definite");
    }

    fn autocorrelation_is_even(m in arb_model(), x in -50.0f64..50.0, y in -50.0f64..50.0) {
        let a = m.autocorrelation(x, y);
        let b = m.autocorrelation(-x, -y);
        assert!((a - b).abs() < 1e-12 * a.abs().max(1e-300));
    }

    fn autocorrelation_decays_along_rays(m in arb_model(), theta in 0.0f64..6.2, r in 0.5f64..50.0) {
        let (s, c) = theta.sin_cos();
        let near = m.autocorrelation(r * c, r * s);
        let far = m.autocorrelation(2.0 * r * c, 2.0 * r * s);
        assert!(far <= near + 1e-12, "ρ must be radially decreasing in scaled space");
    }

    fn weight_array_is_non_negative_and_sums_to_variance(m in arb_model()) {
        // Resolve the spectral peak: the lattice must span several
        // correlation lengths per axis or the Riemann sum over W's sharp
        // peak is meaningless.
        let p = m.params();
        let pick = |cl: f64| ((8.0 * cl).ceil() as usize).next_power_of_two().clamp(32, 512);
        let spec = GridSpec::unit(pick(p.clx), pick(p.cly));
        let w = weight_array(&m, spec);
        let total: f64 = w.as_slice().iter().sum();
        assert!(w.as_slice().iter().all(|&v| v >= 0.0));
        // Adequately sampled, Σw ∈ (0.8·h², 1.2·h²] across all families
        // (the Exponential tail loses up to 1/(π·cl)).
        let v = p.variance();
        assert!(total <= 1.2 * v + 1e-12 && total >= 0.6 * v, "Σw = {total}, h² = {v}");
    }

    fn amplitude_squares_to_weight(m in arb_model()) {
        let spec = GridSpec::unit(16, 16);
        let w = weight_array(&m, spec);
        let v = amplitude_array(&m, spec);
        for (a, b) in v.as_slice().iter().zip(w.as_slice()) {
            assert!((a * a - b).abs() < 1e-12 * b.max(1.0));
        }
    }

    fn gaussian_correlation_length_definition(p in arb_params()) {
        // ρ(clx, 0) = h²/e exactly for the Gaussian family.
        let g = Gaussian::new(p);
        let rho = g.autocorrelation(p.clx, 0.0);
        assert!((rho - p.variance() * (-1.0f64).exp()).abs() < 1e-12 * p.variance().max(1e-12));
    }

    fn exponential_correlation_length_definition(p in arb_params()) {
        let e = Exponential::new(p);
        let rho = e.autocorrelation(0.0, p.cly);
        assert!((rho - p.variance() * (-1.0f64).exp()).abs() < 1e-12 * p.variance().max(1e-12));
    }

    fn power_law_order_interpolates_families(p in arb_params(), n in 1.1f64..6.0) {
        // Any valid order gives a well-behaved model.
        let m = PowerLaw::new(p, n);
        assert!(m.density(0.1, 0.2).is_finite());
        let rho = m.autocorrelation(p.clx * 0.5, 0.0);
        assert!(rho > 0.0 && rho < p.variance() * (1.0 + 1e-12));
    }

    /// Regression for the signed-frequency fix: rotated anisotropic
    /// spectra (no quadrant symmetry) must still produce weight arrays
    /// summing to h². A magnitude-folded sampling would overweight one
    /// diagonal and fail this badly.
    fn rotated_weight_arrays_sum_to_variance(
        theta in -3.2f64..3.2,
        clx in 4.0f64..20.0,
        cly in 4.0f64..20.0,
    ) {
        let s = Rotated::new(Gaussian::new(SurfaceParams::new(1.0, clx, cly)), theta);
        let p = s.params();
        let pick = |cl: f64| ((8.0 * cl).ceil() as usize).next_power_of_two().clamp(64, 256);
        let spec = GridSpec::unit(pick(p.clx), pick(p.cly));
        let w = weight_array(&s, spec);
        let total: f64 = w.as_slice().iter().sum();
        assert!((total - 1.0).abs() < 0.02, "theta={theta}: Σw = {total}");
    }
}
