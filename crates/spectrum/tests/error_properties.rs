//! Properties of the fallible constructors: the whole invalid domain is
//! rejected with a typed error, the whole valid domain is accepted, and
//! the panicking wrappers agree with their `try_*` twins.

use rrs_check::{from_fn, props, CaseRng};
use rrs_spectrum::{GridSpec, PowerLaw, SurfaceParams};
use rrs_error::ErrorKind;

/// Draws a value that is NOT a finite positive number: NaN, ±∞, zero, or
/// a negative finite.
fn non_positive(rng: &mut CaseRng) -> f64 {
    match rng.next_below(5) {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => 0.0,
        _ => -(rng.next_f64() * 1e6 + f64::MIN_POSITIVE),
    }
}

props! {
    #![cases = 96]

    fn valid_params_accepted(h in 0.0f64..1e9, clx in 1e-9f64..1e9, cly in 1e-9f64..1e9) {
        let p = SurfaceParams::try_new(h, clx, cly).expect("valid domain must be accepted");
        assert_eq!((p.h, p.clx, p.cly), (h, clx, cly));
        // The panicking wrapper constructs the identical value.
        assert_eq!(SurfaceParams::new(h, clx, cly), p);
        assert_eq!(SurfaceParams::try_isotropic(h, clx).unwrap(), SurfaceParams::isotropic(h, clx));
    }

    fn bad_height_rejected(h in from_fn(|rng: &mut CaseRng| {
        // h may be zero, so only NaN/±∞/negative are invalid.
        match rng.next_below(4) {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            _ => -(rng.next_f64() * 1e6 + f64::MIN_POSITIVE),
        }
    }), cl in 1e-3f64..1e3) {
        let e = SurfaceParams::try_new(h, cl, cl).unwrap_err();
        assert_eq!(e.kind(), ErrorKind::InvalidParam, "h={h}: {e}");
        assert!(e.to_string().contains("h must be finite"), "{e}");
    }

    fn bad_correlation_length_rejected(
        bad in from_fn(non_positive),
        good in 1e-3f64..1e3,
        which in rrs_check::any::<bool>(),
    ) {
        let (clx, cly) = if which { (bad, good) } else { (good, bad) };
        let e = SurfaceParams::try_new(1.0, clx, cly).unwrap_err();
        assert_eq!(e.kind(), ErrorKind::InvalidParam, "clx={clx} cly={cly}: {e}");
    }

    fn odd_or_tiny_grids_rejected(nx in 0usize..512, ny in 0usize..512) {
        let valid = |n: usize| n >= 2 && n % 2 == 0;
        match GridSpec::try_unit(nx, ny) {
            Ok(spec) => {
                assert!(valid(nx) && valid(ny), "{nx}x{ny} accepted");
                assert_eq!((spec.nx, spec.ny), (nx, ny));
                assert_eq!(GridSpec::unit(nx, ny), spec);
            }
            Err(e) => {
                assert!(!(valid(nx) && valid(ny)), "{nx}x{ny} rejected: {e}");
                assert_eq!(e.kind(), ErrorKind::InvalidParam);
            }
        }
    }

    fn bad_spacing_rejected(bad in from_fn(non_positive)) {
        let e = GridSpec::try_new(4, 4, bad, 1.0).unwrap_err();
        assert_eq!(e.kind(), ErrorKind::InvalidParam, "dx={bad}: {e}");
        let e = GridSpec::try_new(4, 4, 1.0, bad).unwrap_err();
        assert_eq!(e.kind(), ErrorKind::InvalidParam, "dy={bad}: {e}");
    }

    fn power_law_order_boundary(n in -4.0f64..8.0) {
        let p = SurfaceParams::isotropic(1.0, 5.0);
        match PowerLaw::try_new(p, n) {
            Ok(_) => assert!(n > 1.0, "N={n} accepted"),
            Err(e) => {
                assert!(!(n > 1.0), "N={n} rejected: {e}");
                assert!(e.to_string().contains("N > 1"), "{e}");
            }
        }
    }
}
