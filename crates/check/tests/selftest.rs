//! End-to-end exercise of the `props!` macro and the standard generators.

use rrs_check::{any, from_fn, vec_of, CaseRng, Just};

rrs_check::props! {
    #![cases = 64]

    fn ranges_honor_bounds(x in -1e6f64..1e6, n in 1usize..96, k in -1000i64..1000) {
        assert!((-1e6..1e6).contains(&x));
        assert!((1..96).contains(&n));
        assert!((-1000..1000).contains(&k));
    }

    fn any_draws_are_deterministic_per_case(seed in any::<u64>(), flag in any::<bool>()) {
        // Mixing a full-width draw into arithmetic must never panic, and
        // the bool generator must produce a plain bool.
        let _ = seed.wrapping_mul(2) ^ u64::from(flag);
    }

    fn tuples_just_and_closures_compose(
        pair in (0u8..4, Just(7u32)),
        v in from_fn(|rng: &mut CaseRng| rng.next_f64() * 2.0 - 1.0),
    ) {
        assert!(pair.0 < 4);
        assert_eq!(pair.1, 7);
        assert!((-1.0..1.0).contains(&v));
    }

    fn vectors_have_requested_lengths(xs in vec_of(-1e3f64..1e3, 2..400)) {
        assert!((2..400).contains(&xs.len()));
        assert!(xs.iter().all(|x| x.is_finite()));
    }

    fn assume_discards_cases(a in 0u64..100, b in 0u64..100) {
        rrs_check::assume!(a != b);
        assert_ne!(a, b);
    }

    fn mid_body_draws_work(n in 1usize..8) {
        // Data-dependent draw through CaseRng::draw.
        let extra = |rng: &mut CaseRng| rng.draw(0usize..n);
        let _ = extra;
    }
}

mod headerless {
    // No `#![cases = …]` header: the default count applies.
    rrs_check::props! {
        fn default_case_count_applies(x in 0u64..10) {
            assert!(x < 10);
        }
    }
}
