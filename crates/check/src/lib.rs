//! Minimal property-testing harness for the rrs workspace.
//!
//! A hermetic, shrinking-free replacement for the external `proptest`
//! dependency. Each property runs a configurable number of *cases*; every
//! case draws its inputs from a dedicated [`CaseRng`] whose 64-bit seed is
//! derived deterministically from the property's name and the case index,
//! so a run is bit-reproducible across machines with no regression files.
//!
//! On failure the harness prints the failing case's seed and a one-line
//! reproduction recipe, then re-raises the panic so the standard test
//! runner reports the property as failed:
//!
//! ```text
//! [rrs-check] property 'properties::mean_is_bounded' failed at case 17/128
//! [rrs-check] reproduce with: RRS_CHECK_SEED=0x3afc…91 cargo test mean_is_bounded
//! ```
//!
//! # Writing properties
//!
//! ```
//! rrs_check::props! {
//!     #![cases = 64]
//!
//!     fn addition_commutes(a in -1e6f64..1e6, b in -1e6f64..1e6) {
//!         assert_eq!(a + b, b + a);
//!     }
//! }
//! ```
//!
//! Inputs are anything implementing [`Gen`]: primitive ranges
//! (`-3.0f64..3.0`, `1usize..96`), [`any`] for full-width draws,
//! [`Just`] for constants, tuples of generators, [`vec_of`] for
//! variable-length vectors, and — the escape hatch — [`from_fn`] over any
//! closure `Fn(&mut CaseRng) -> T`. Use [`assume!`](crate::assume) to discard a
//! case that does not satisfy a precondition (the case counts as passed;
//! there is no replacement draw).
//!
//! # Environment knobs
//!
//! * `RRS_CHECK_CASES` — overrides every property's case count;
//! * `RRS_CHECK_SEED` — runs exactly one case with the given seed
//!   (decimal or `0x…` hex), for replaying a reported failure.

#![warn(missing_docs)]

mod gen;
mod runner;

pub use gen::{any, from_fn, map, vec_of, Any, FromFn, Gen, Just, Map, VecOf};
pub use runner::{CaseRng, Runner};

/// Declares a block of property tests.
///
/// Syntax mirrors the `proptest!` macro this harness replaces: an optional
/// `#![cases = N]` header (default 128), then `fn name(arg in gen, …) { …
/// }` items. Each item expands to a `#[test]` function running `N` seeded
/// cases.
#[macro_export]
macro_rules! props {
    (
        #![cases = $cases:expr]
        $($rest:tt)*
    ) => {
        $crate::props!(@with $cases; $($rest)*);
    };
    (
        @with $cases:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $gen:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                $crate::Runner::new(
                    concat!(module_path!(), "::", stringify!($name)),
                    ($cases) as u64,
                )
                .run(|rng| {
                    #[allow(unused_variables)]
                    let rng = rng;
                    $(#[allow(unused_mut)] let mut $arg = $crate::Gen::generate(&($gen), rng);)*
                    $body
                });
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::props!(@with 128u64; $($rest)*);
    };
}

/// Discards the current case when `cond` is false.
///
/// Unlike proptest's `prop_assume!` no replacement case is drawn — the
/// case simply counts as passed. The properties in this workspace use
/// assumptions that hold for the overwhelming majority of draws, so the
/// effective case count is essentially unchanged.
#[macro_export]
macro_rules! assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}
