//! Input generators: the [`Gen`] trait and its standard implementations.

use crate::CaseRng;
use std::marker::PhantomData;
use std::ops::Range;

/// A strategy for drawing property inputs from a [`CaseRng`].
///
/// Implemented for primitive ranges, tuples, [`Just`], [`Any`], [`VecOf`]
/// and — via [`from_fn`] — any closure `Fn(&mut CaseRng) -> T`, so ad-hoc
/// generators are plain functions rather than combinator towers.
pub trait Gen {
    /// The type of values this generator produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut CaseRng) -> Self::Value;
}

/// Maps `gen`'s output through `f`.
///
/// A free function rather than a `Gen` method: integer ranges implement
/// both `Gen` and `Iterator`, so a trait method named `map` would make
/// every `(0..n).map(…)` iterator chain ambiguous wherever `Gen` is in
/// scope.
pub fn map<G, F, U>(gen: G, f: F) -> Map<G, F>
where
    G: Gen,
    F: Fn(G::Value) -> U,
{
    Map { gen, f }
}

/// Adapter returned by [`map`].
pub struct Map<G, F> {
    gen: G,
    f: F,
}

impl<G, F, U> Gen for Map<G, F>
where
    G: Gen,
    F: Fn(G::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut CaseRng) -> U {
        (self.f)(self.gen.generate(rng))
    }
}

/// Closure-backed generator; construct via [`from_fn`].
pub struct FromFn<F>(F);

/// Wraps a closure `Fn(&mut CaseRng) -> T` as a [`Gen`] — the escape hatch
/// for generators with data-dependent structure.
pub fn from_fn<T, F: Fn(&mut CaseRng) -> T>(f: F) -> FromFn<F> {
    FromFn(f)
}

impl<T, F: Fn(&mut CaseRng) -> T> Gen for FromFn<F> {
    type Value = T;

    fn generate(&self, rng: &mut CaseRng) -> T {
        (self.0)(rng)
    }
}

/// Always produces a clone of the wrapped value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Gen for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut CaseRng) -> T {
        self.0.clone()
    }
}

/// Full-width draws for primitives; construct via [`any`].
pub struct Any<T>(PhantomData<T>);

/// A generator covering `T`'s whole value domain (`any::<u64>()`,
/// `any::<bool>()`, …), mirroring proptest's `any`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Gen,
{
    Any(PhantomData)
}

impl Gen for Any<u64> {
    type Value = u64;

    fn generate(&self, rng: &mut CaseRng) -> u64 {
        rng.next_u64()
    }
}

impl Gen for Any<u32> {
    type Value = u32;

    fn generate(&self, rng: &mut CaseRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Gen for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut CaseRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Gen for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut CaseRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        let v = self.start + rng.next_f64() * (self.end - self.start);
        // Rounding can land exactly on `end` for tiny ranges; stay half-open.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! impl_gen_for_uint_range {
    ($($t:ty),*) => {$(
        impl Gen for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut CaseRng) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let width = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.next_below(width) as $t
            }
        }
    )*};
}

impl_gen_for_uint_range!(u8, u16, u32, u64, usize);

macro_rules! impl_gen_for_int_range {
    ($($t:ty),*) => {$(
        impl Gen for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut CaseRng) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let width = (self.end as i64 as u64).wrapping_sub(self.start as i64 as u64);
                (self.start as i64).wrapping_add(rng.next_below(width) as i64) as $t
            }
        }
    )*};
}

impl_gen_for_int_range!(i8, i16, i32, i64, isize);

macro_rules! impl_gen_for_tuple {
    ($($g:ident / $v:ident),+) => {
        impl<$($g: Gen),+> Gen for ($($g,)+) {
            type Value = ($($g::Value,)+);

            fn generate(&self, rng: &mut CaseRng) -> Self::Value {
                let ($($v,)+) = self;
                ($($v.generate(rng),)+)
            }
        }
    };
}

impl_gen_for_tuple!(A / a);
impl_gen_for_tuple!(A / a, B / b);
impl_gen_for_tuple!(A / a, B / b, C / c);
impl_gen_for_tuple!(A / a, B / b, C / c, D / d);
impl_gen_for_tuple!(A / a, B / b, C / c, D / d, E / e);
impl_gen_for_tuple!(A / a, B / b, C / c, D / d, E / e, F2 / f2);

/// Variable-length `Vec` generator; construct via [`vec_of`].
pub struct VecOf<G> {
    elem: G,
    len: Range<usize>,
}

/// Draws a `Vec` whose length is uniform in `len` and whose elements come
/// from `elem` — the replacement for `proptest::collection::vec`.
pub fn vec_of<G: Gen>(elem: G, len: Range<usize>) -> VecOf<G> {
    VecOf { elem, len }
}

impl<G: Gen> Gen for VecOf<G> {
    type Value = Vec<G::Value>;

    fn generate(&self, rng: &mut CaseRng) -> Vec<G::Value> {
        let n = self.len.generate(rng);
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> CaseRng {
        CaseRng::new(0xDEADBEEF)
    }

    #[test]
    fn float_range_stays_half_open() {
        let mut r = rng();
        for _ in 0..10_000 {
            let v = (-2.5f64..7.5).generate(&mut r);
            assert!((-2.5..7.5).contains(&v));
        }
    }

    #[test]
    fn integer_ranges_cover_bounds() {
        let mut r = rng();
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = (0u8..4).generate(&mut r);
            assert!(v < 4);
            seen_lo |= v == 0;
            seen_hi |= v == 3;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn signed_ranges_span_zero() {
        let mut r = rng();
        let mut neg = false;
        let mut pos = false;
        for _ in 0..10_000 {
            let v = (-1000i64..1000).generate(&mut r);
            assert!((-1000..1000).contains(&v));
            neg |= v < 0;
            pos |= v > 0;
        }
        assert!(neg && pos);
    }

    #[test]
    fn full_width_u64_range_works() {
        let mut r = rng();
        for _ in 0..1000 {
            let v = (1u64..u64::MAX).generate(&mut r);
            assert!(v >= 1);
        }
    }

    #[test]
    fn tuples_and_map_compose() {
        let g = map((1usize..10, -1.0f64..1.0), |(n, x)| vec![x; n]);
        let mut r = rng();
        let v = g.generate(&mut r);
        assert!(!v.is_empty() && v.len() < 10);
    }

    #[test]
    fn closures_are_generators() {
        let g = from_fn(|rng: &mut CaseRng| rng.next_u64() % 7);
        let mut r = rng();
        for _ in 0..100 {
            assert!(g.generate(&mut r) < 7);
        }
    }

    #[test]
    fn vec_of_respects_length_range() {
        let g = vec_of(-1e3f64..1e3, 2..400);
        let mut r = rng();
        for _ in 0..200 {
            let v = g.generate(&mut r);
            assert!((2..400).contains(&v.len()));
            assert!(v.iter().all(|x| (-1e3..1e3).contains(x)));
        }
    }

    #[test]
    fn just_clones_its_value() {
        let mut r = rng();
        assert_eq!(Just(41).generate(&mut r), 41);
    }

    #[test]
    fn same_seed_same_draws() {
        let g = (0u64..1000, -1.0f64..1.0, 0u8..4);
        let mut a = CaseRng::new(7);
        let mut b = CaseRng::new(7);
        for _ in 0..64 {
            assert_eq!(g.generate(&mut a), g.generate(&mut b));
        }
    }
}
