//! Case scheduling, seed derivation and failure reporting.

use rrs_rng::{RandomSource, SplitMix64, Xoshiro256pp};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// The per-case random source handed to every generator.
///
/// A thin wrapper over [`Xoshiro256pp`] seeded from the case seed; exposes
/// the raw draws generators need plus a convenience [`draw`](CaseRng::draw)
/// for pulling a value out of any [`Gen`](crate::Gen) mid-property.
pub struct CaseRng {
    inner: Xoshiro256pp,
    seed: u64,
}

impl CaseRng {
    /// Creates a source for the case identified by `seed`.
    pub fn new(seed: u64) -> Self {
        Self { inner: Xoshiro256pp::seed_from_u64(seed), seed }
    }

    /// The seed this case was created from (what failure reports print).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// A uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        self.inner.next_f64()
    }

    /// A uniform integer in `[0, bound)` (unbiased).
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        self.inner.next_below(bound)
    }

    /// Generates a value from `gen` — handy for data-dependent draws
    /// inside a property body.
    pub fn draw<G: crate::Gen>(&mut self, gen: G) -> G::Value {
        gen.generate(self)
    }
}

fn fnv1a(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// Runs one property over its schedule of seeded cases.
pub struct Runner {
    name: &'static str,
    cases: u64,
}

impl Runner {
    /// Creates a runner for the property `name` with the given default
    /// case count (`RRS_CHECK_CASES` overrides it).
    pub fn new(name: &'static str, cases: u64) -> Self {
        let cases = std::env::var("RRS_CHECK_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n: &u64| n > 0)
            .unwrap_or(cases);
        Self { name, cases }
    }

    /// Executes the property once per case.
    ///
    /// With `RRS_CHECK_SEED` set, runs exactly one case with that seed.
    /// On a panic inside `f`, prints the failing seed and reproduction
    /// line, then re-raises the panic.
    pub fn run<F>(&self, f: F)
    where
        F: Fn(&mut CaseRng),
    {
        if let Some(seed) = std::env::var("RRS_CHECK_SEED").ok().and_then(|v| parse_seed(&v)) {
            self.run_case(seed, 0, 1, &f);
            return;
        }
        // Per-property seed stream: hashing the fully qualified name keeps
        // sibling properties on unrelated sequences, and SplitMix64 is the
        // workspace's canonical stream deriver.
        let mut stream = SplitMix64::new(fnv1a(self.name.as_bytes()));
        for case in 0..self.cases {
            self.run_case(stream.next_u64(), case, self.cases, &f);
        }
    }

    fn run_case<F>(&self, seed: u64, case: u64, total: u64, f: &F)
    where
        F: Fn(&mut CaseRng),
    {
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut rng = CaseRng::new(seed);
            f(&mut rng);
        }));
        if let Err(payload) = result {
            let short = self.name.rsplit("::").next().unwrap_or(self.name);
            eprintln!(
                "[rrs-check] property '{}' failed at case {}/{} (seed {:#018x})",
                self.name,
                case + 1,
                total,
                seed
            );
            eprintln!("[rrs-check] reproduce with: RRS_CHECK_SEED={seed:#x} cargo test {short}");
            resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_rng_is_deterministic_per_seed() {
        let mut a = CaseRng::new(42);
        let mut b = CaseRng::new(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = CaseRng::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn runner_visits_every_case() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let count = AtomicU64::new(0);
        Runner { name: "test::visits", cases: 37 }.run(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 37);
    }

    #[test]
    fn failing_property_panics_with_report() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            Runner { name: "test::fails", cases: 8 }.run(|rng| {
                assert!(rng.next_f64() < 0.5, "unlucky draw");
            });
        }));
        assert!(result.is_err(), "a ~1-in-256 surviving schedule would be a seed-derivation bug");
    }

    #[test]
    fn seeds_differ_between_properties() {
        // Identical bodies under different names must see different data.
        let a = std::sync::Mutex::new(Vec::new());
        let b = std::sync::Mutex::new(Vec::new());
        Runner { name: "test::stream_a", cases: 8 }.run(|rng| a.lock().unwrap().push(rng.next_u64()));
        Runner { name: "test::stream_b", cases: 8 }.run(|rng| b.lock().unwrap().push(rng.next_u64()));
        assert_ne!(*a.lock().unwrap(), *b.lock().unwrap());
    }

    #[test]
    fn parse_seed_accepts_hex_and_decimal() {
        assert_eq!(parse_seed("255"), Some(255));
        assert_eq!(parse_seed("0xff"), Some(255));
        assert_eq!(parse_seed("0XFF"), Some(255));
        assert_eq!(parse_seed("zzz"), None);
    }
}
