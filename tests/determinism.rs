//! Determinism regression tests for the convolution generator.
//!
//! The static-partition contract of `rrs-par` promises that worker count
//! never changes results — only wall-clock time. These tests pin that
//! contract at the surface level: the generated window must be
//! bit-identical across worker counts and across repeated same-seed runs,
//! and adjacent windows must tile seamlessly.

use rrs::prelude::*;

fn spectrum() -> Gaussian {
    Gaussian::new(SurfaceParams::new(1.3, 5.0, 3.0))
}

fn sizing() -> KernelSizing {
    KernelSizing::Auto { factor: 6.0, min: 16, max: 64 }
}

/// Workers = 1 and workers = 8 must produce bit-identical windows: the
/// row partition changes, the arithmetic per output sample must not.
#[test]
fn window_is_bit_identical_across_worker_counts() {
    let s = spectrum();
    let noise = NoiseField::new(0x5EED_CAFE);
    let serial = ConvolutionGenerator::new(&s, sizing())
        .with_workers(1)
        .generate(&noise, Window::new(-17, 23, 96, 64));
    for workers in [2, 3, 8] {
        let parallel = ConvolutionGenerator::new(&s, sizing())
            .with_workers(workers)
            .generate(&noise, Window::new(-17, 23, 96, 64));
        assert_eq!(
            serial.as_slice(),
            parallel.as_slice(),
            "workers={workers} diverged from serial"
        );
    }
}

/// Two runs with the same seed are bit-identical; a different seed is not.
#[test]
fn same_seed_runs_are_bit_identical() {
    let s = spectrum();
    let gen = ConvolutionGenerator::new(&s, sizing()).with_workers(4);
    let a = gen.generate(&NoiseField::new(42), Window::new(0, 0, 64, 64));
    let b = gen.generate(&NoiseField::new(42), Window::new(0, 0, 64, 64));
    assert_eq!(a, b, "same-seed runs must be reproducible");
    let c = gen.generate(&NoiseField::new(43), Window::new(0, 0, 64, 64));
    assert_ne!(a, c, "different seeds must differ");
}

/// Four quadrant windows reassemble the full window exactly — the
/// streaming/tiled path has no seams (§2.4 of the paper: window values
/// depend only on absolute coordinates, not window geometry).
#[test]
fn quadrant_windows_tile_seamlessly() {
    let s = spectrum();
    let gen = ConvolutionGenerator::new(&s, sizing()).with_workers(4);
    let noise = NoiseField::new(0xD15C);
    let (w, h) = (80usize, 56usize);
    let (x0, y0) = (-9i64, 31i64);
    let full = gen.generate(&noise, Window::new(x0, y0, w, h));
    let (hw, hh) = (w / 2, h / 2);
    let quads = [
        (0usize, 0usize, gen.generate(&noise, Window::new(x0, y0, hw, hh))),
        (hw, 0, gen.generate(&noise, Window::new(x0 + hw as i64, y0, w - hw, hh))),
        (0, hh, gen.generate(&noise, Window::new(x0, y0 + hh as i64, hw, h - hh))),
        (
            hw,
            hh,
            gen.generate(&noise, Window::new(x0 + hw as i64, y0 + hh as i64, w - hw, h - hh)),
        ),
    ];
    for (ox, oy, q) in &quads {
        let (qw, qh) = q.shape();
        for iy in 0..qh {
            for ix in 0..qw {
                assert_eq!(
                    q.get(ix, iy),
                    full.get(ox + ix, oy + iy),
                    "seam at quadrant offset ({ox},{oy}), local ({ix},{iy})"
                );
            }
        }
    }
}
