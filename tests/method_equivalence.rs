//! Cross-crate integration: the two generation methods of the paper are
//! the same method.
//!
//! §2.4 derives the convolution method from the direct DFT method through
//! the convolution theorem. These tests enforce both halves of that
//! claim: *exact* agreement when driven by the same randomness, and
//! *statistical* agreement across ensembles — for every spectrum family
//! and independent of the RNG family driving the noise.

use rrs::fft::{Direction, Fft2d};
use rrs::grid::Grid2;
use rrs::prelude::*;
use rrs::rng::{Pcg32, Xoshiro256pp};
use rrs::surface::hermitian::hermitian_gaussian_array;

/// Exact identity: f_direct(u) == w̃ ⊛ (DFT(u)/√N), for all spectra.
#[test]
fn direct_and_convolution_agree_exactly_per_spectrum() {
    let p = SurfaceParams::isotropic(1.2, 4.0);
    let spectra: Vec<SpectrumModel> = vec![
        SpectrumModel::gaussian(p),
        SpectrumModel::power_law(p, 2.0),
        SpectrumModel::power_law(p, 3.0),
        SpectrumModel::exponential(p),
    ];
    let spec = GridSpec::unit(24, 24);
    let mut rng = Xoshiro256pp::seed_from_u64(5);
    let u = hermitian_gaussian_array(spec.nx, spec.ny, &mut rng);

    // Shared noise grid X = DFT(u)/sqrt(N).
    let mut x = u.clone();
    Fft2d::with_workers(spec.nx, spec.ny, 1).process(&mut x, Direction::Forward);
    let scale = 1.0 / ((spec.nx * spec.ny) as f64).sqrt();
    let noise = Grid2::from_vec(spec.nx, spec.ny, x.iter().map(|z| z.re * scale).collect());

    for (i, s) in spectra.iter().enumerate() {
        let f_direct =
            DirectDftGenerator::with_workers(*s, spec, 1).generate_from_bins(&u);
        let kernel = ConvolutionKernel::build_on(s, spec);
        let f_conv = ConvolutionGenerator::from_kernel(kernel)
            .with_workers(1)
            .convolve_periodic(&noise);
        let err = f_direct
            .as_slice()
            .iter()
            .zip(f_conv.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-9, "spectrum {i}: methods disagree by {err}");
    }
}

/// Ensemble statistics agree between methods (independent randomness).
#[test]
fn ensemble_statistics_agree_between_methods() {
    let h = 1.5;
    let cl = 6.0;
    let p = SurfaceParams::isotropic(h, cl);
    let s = Gaussian::new(p);
    let n = 128usize;
    let reps = 10u64;

    let direct = DirectDftGenerator::with_workers(s, GridSpec::unit(n, n), 1);
    let conv = ConvolutionGenerator::new(&s, KernelSizing::default()).with_workers(1);

    let mut var_direct = 0.0;
    let mut var_conv = 0.0;
    for seed in 0..reps {
        let fd = direct.generate(seed);
        var_direct += fd.as_slice().iter().map(|v| v * v).sum::<f64>() / fd.len() as f64;
        let fc = conv.generate(&NoiseField::new(seed), Window::new(0, 0, n, n));
        var_conv += fc.as_slice().iter().map(|v| v * v).sum::<f64>() / fc.len() as f64;
    }
    var_direct /= reps as f64;
    var_conv /= reps as f64;
    let target = h * h;
    assert!((var_direct - target).abs() < 0.15 * target, "direct var {var_direct}");
    assert!((var_conv - target).abs() < 0.15 * target, "conv var {var_conv}");
    assert!(
        (var_direct - var_conv).abs() < 0.2 * target,
        "methods disagree: {var_direct} vs {var_conv}"
    );
}

/// The surface statistics must not depend on which RNG family drives the
/// direct method (xoshiro256++ vs PCG32 — independent designs).
#[test]
fn statistics_are_rng_family_invariant() {
    let p = SurfaceParams::isotropic(1.0, 5.0);
    let s = Gaussian::new(p);
    let spec = GridSpec::unit(128, 128);
    let gen = DirectDftGenerator::with_workers(s, spec, 1);
    let reps = 8;

    let mut var_xo = 0.0;
    let mut var_pcg = 0.0;
    for seed in 0..reps {
        let mut xo = Xoshiro256pp::seed_from_u64(seed);
        let fx = gen.generate_with(&mut xo);
        var_xo += fx.variance();
        let mut pcg = Pcg32::seed_from_u64(seed);
        let fp = gen.generate_with(&mut pcg);
        var_pcg += fp.variance();
    }
    var_xo /= reps as f64;
    var_pcg /= reps as f64;
    assert!((var_xo - 1.0).abs() < 0.12, "xoshiro var {var_xo}");
    assert!((var_pcg - 1.0).abs() < 0.12, "pcg var {var_pcg}");
    assert!((var_xo - var_pcg).abs() < 0.15, "{var_xo} vs {var_pcg}");
}

/// The measured autocorrelation of generated surfaces matches the model's
/// closed form, method-independently.
#[test]
fn measured_autocorrelation_matches_model() {
    let p = SurfaceParams::isotropic(1.0, 8.0);
    let s = Gaussian::new(p);
    let n = 256usize;
    let conv = ConvolutionGenerator::new(&s, KernelSizing::default()).with_workers(2);
    let f = conv.generate(&NoiseField::new(77), Window::new(0, 0, n, n));
    let lags: Vec<(i64, i64)> = vec![(0, 0), (4, 0), (8, 0), (0, 8), (12, 0), (6, 6)];
    let measured = rrs::stats::autocorrelation_lags_with_mean(&f, &lags, 0.0);
    use rrs::spectrum::Spectrum;
    for (&(dx, dy), &got) in lags.iter().zip(&measured) {
        let expect = s.autocorrelation(dx as f64, dy as f64);
        assert!(
            (got - expect).abs() < 0.12,
            "lag ({dx},{dy}): measured {got}, model {expect}"
        );
    }
}

/// Parallelism must never change results, across the whole pipeline.
#[test]
fn full_pipeline_is_worker_count_invariant() {
    let p = SurfaceParams::new(1.0, 6.0, 9.0);
    let s = Exponential::new(p);
    for &(w1, w2) in &[(1usize, 4usize), (2, 8)] {
        let a = DirectDftGenerator::with_workers(s, GridSpec::unit(64, 64), w1).generate(3);
        let b = DirectDftGenerator::with_workers(s, GridSpec::unit(64, 64), w2).generate(3);
        assert_eq!(a, b, "direct method differs between {w1} and {w2} workers");
        let ka = ConvolutionGenerator::new(&s, KernelSizing::default()).with_workers(w1);
        let kb = ConvolutionGenerator::new(&s, KernelSizing::default()).with_workers(w2);
        let noise = NoiseField::new(9);
        assert_eq!(
            ka.generate(&noise, Window::new(-7, 3, 60, 40)),
            kb.generate(&noise, Window::new(-7, 3, 60, 40)),
            "convolution differs between {w1} and {w2} workers"
        );
    }
}
