//! Runtime budgets across the full stack: cooperative cancellation at
//! every tile boundary leaves resumable state bit-identical to the
//! uncancelled run's prefix; deadline and cancel errors are deterministic
//! under the serial fallback; with no budget (or an armed-but-idle one)
//! every generator is bit-identical to its unbudgeted self; and admission
//! control rejects oversized requests before anything is allocated.

use rrs::prelude::*;
use rrs::spectrum::GridSpec;
use rrs::surface::NoiseField;
use std::time::{Duration, Instant};

const NY: usize = 24;
const STRIP_W: usize = 8;
const N_STRIPS: usize = 6;
const SEED: u64 = 0xBADCAFE;

fn generator() -> ConvolutionGenerator {
    let s = Gaussian::new(SurfaceParams::isotropic(1.0, 4.0));
    ConvolutionGenerator::new(&s, KernelSizing::Explicit(GridSpec::unit(16, 16))).with_workers(2)
}

fn stream(budget: Budget) -> StripGenerator {
    StripGenerator::from_generator(generator().with_budget(budget), NY, SEED)
}

/// Runs a budgeted stream to completion or until the budget trips,
/// checkpointing after every strip. Returns the strips emitted and the
/// final resumable checkpoint.
fn run_stream(mut sg: StripGenerator) -> (Vec<Grid2<f64>>, StreamCheckpoint) {
    let mut strips = Vec::new();
    while (sg.cursor() as usize) < N_STRIPS * STRIP_W {
        match sg.try_next_strip(STRIP_W) {
            Ok(s) => strips.push(s),
            Err(e) => {
                assert_eq!(e.kind(), ErrorKind::Cancelled, "only cancel trips in this test");
                break;
            }
        }
    }
    let cp = StreamCheckpoint {
        seed: sg.seed(),
        height: sg.height() as u64,
        cursor: sg.cursor(),
    };
    (strips, cp)
}

#[test]
fn cancel_at_every_tile_index_leaves_resumable_bit_identical_prefixes() {
    let (reference, _) = run_stream(stream(Budget::unlimited()));
    assert_eq!(reference.len(), N_STRIPS);

    for cancel_at in 0..N_STRIPS {
        // The token trips after `cancel_at` strips: a watcher cancelling
        // an in-flight stream at an arbitrary tile boundary.
        let token = CancelToken::new();
        let mut sg = stream(Budget::unlimited().with_cancel_token(token.clone()));
        let mut strips = Vec::new();
        for i in 0..N_STRIPS {
            if i == cancel_at {
                token.cancel();
            }
            match sg.try_next_strip(STRIP_W) {
                Ok(s) => strips.push(s),
                Err(e) => {
                    assert_eq!(e.kind(), ErrorKind::Cancelled, "cancel_at={cancel_at}");
                    break;
                }
            }
        }
        assert_eq!(strips.len(), cancel_at, "stream stops within one tile of the cancel");

        // The emitted prefix is bit-identical to the uncancelled run...
        for (i, (got, want)) in strips.iter().zip(&reference).enumerate() {
            assert_eq!(got.as_slice(), want.as_slice(), "cancel_at={cancel_at}: strip {i}");
        }
        // ...and the resumable state continues the identical surface.
        let cp = StreamCheckpoint {
            seed: sg.seed(),
            height: sg.height() as u64,
            cursor: sg.cursor(),
        };
        assert_eq!(cp.cursor, (cancel_at * STRIP_W) as i64, "cursor never advances past a trip");
        let mut resumed =
            StripGenerator::try_from_generator(generator(), cp.height as usize, cp.seed).unwrap();
        resumed.seek(cp.cursor);
        let (rest, _) = run_stream(resumed);
        let mut all = strips;
        all.extend(rest);
        assert_eq!(all.len(), N_STRIPS, "cancel_at={cancel_at}");
        for (i, (got, want)) in all.iter().zip(&reference).enumerate() {
            assert_eq!(
                got.as_slice(),
                want.as_slice(),
                "cancel_at={cancel_at}: strip {i} differs after resume"
            );
        }
    }
}

#[test]
fn pre_cancelled_token_returns_cancelled_without_allocating() {
    let token = CancelToken::new();
    token.cancel();
    let gen = generator().with_budget(Budget::unlimited().with_cancel_token(token));
    // This window's output alone is ~8 EiB of f64s: any allocation
    // attempt would abort the process, so returning Cancelled proves the
    // pre-flight check fires before allocation.
    let win = Window::new(0, 0, 1 << 30, 1 << 30);
    let err = gen.try_generate(&NoiseField::new(SEED), win).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::Cancelled);
}

#[test]
fn deadline_and_cancel_are_deterministic_under_serial_fallback() {
    // workers = 1 exercises the serial path of the budgeted primitive:
    // the same deterministic error must surface as in the parallel path.
    let s = Gaussian::new(SurfaceParams::isotropic(1.0, 4.0));
    let base = ConvolutionGenerator::new(&s, KernelSizing::Explicit(GridSpec::unit(16, 16)));
    let noise = NoiseField::new(SEED);
    let win = Window::sized(32, 32);

    let expired = base
        .with_workers(1)
        .with_budget(Budget::unlimited().with_deadline(Instant::now() - Duration::from_secs(1)));
    for _ in 0..3 {
        let err = expired.try_generate(&noise, win).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::DeadlineExceeded, "deterministic across calls");
    }

    let token = CancelToken::new();
    token.cancel();
    let cancelled = ConvolutionGenerator::new(&s, KernelSizing::Explicit(GridSpec::unit(16, 16)))
        .with_workers(1)
        .with_budget(Budget::unlimited().with_cancel_token(token));
    for _ in 0..3 {
        let err = cancelled.try_generate(&noise, win).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Cancelled, "deterministic across calls");
    }
}

#[test]
fn all_generators_are_bit_identical_with_no_budget_and_armed_idle_budget() {
    let armed = || {
        Budget::unlimited()
            .with_cancel_token(CancelToken::new())
            .with_timeout(Duration::from_secs(3600))
            .with_max_bytes(usize::MAX)
    };
    let noise = NoiseField::new(SEED);
    let win = Window::new(-5, 3, 40, 24);

    // Convolution generator.
    let plain = generator().generate(&noise, win);
    let budgeted = generator().with_budget(armed()).try_generate(&noise, win).unwrap();
    assert_eq!(plain, budgeted, "convolution");

    // Strip generator.
    let mut a = stream(Budget::unlimited());
    let mut b = stream(armed());
    for i in 0..3 {
        assert_eq!(a.next_strip(STRIP_W), b.try_next_strip(STRIP_W).unwrap(), "strip {i}");
    }

    // Inhomogeneous generator.
    let plates = PlateLayout::new(
        vec![Plate {
            region: Region::HalfPlane { a: 1.0, b: 0.0, c: 20.0 },
            spectrum: SpectrumModel::gaussian(SurfaceParams::isotropic(0.5, 3.0)),
        }],
        Some(SpectrumModel::gaussian(SurfaceParams::isotropic(1.5, 3.0))),
        6.0,
    );
    let sizing = KernelSizing::Explicit(GridSpec::unit(16, 16));
    let plain = InhomogeneousGenerator::new(plates.clone(), sizing)
        .with_workers(2)
        .generate(&noise, win);
    let budgeted = InhomogeneousGenerator::new(plates, sizing)
        .with_workers(2)
        .with_budget(armed())
        .try_generate(&noise, win)
        .unwrap();
    assert_eq!(plain, budgeted, "inhomogeneous");
}

#[test]
fn oversized_strip_fails_with_budget_exceeded_not_abort() {
    let sg = stream(Budget::unlimited().with_max_bytes(1 << 20));
    let err = sg.try_strip_at(0, 1 << 30).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::BudgetExceeded);
    let msg = err.to_string();
    assert!(msg.contains("byte budget"), "{msg}");
    // Within the ceiling the stream still generates, identically.
    assert_eq!(
        sg.try_strip_at(16, STRIP_W).unwrap(),
        stream(Budget::unlimited()).strip_at(16, STRIP_W),
    );
}

#[test]
fn retrying_checkpoints_compose_with_budgeted_streams() {
    // The README workflow: generate under a deadline, checkpoint durably
    // with retries, resume after the deadline fires.
    let dir = std::env::temp_dir().join(format!("rrs_budget_ckpt_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("stream.ckpt");

    let mut sg = stream(Budget::unlimited().with_timeout(Duration::from_secs(3600)));
    let mut emitted = Vec::new();
    for _ in 0..3 {
        emitted.push(sg.try_next_strip(STRIP_W).unwrap());
        write_checkpoint_file_retrying(
            &ckpt,
            &StreamCheckpoint {
                seed: sg.seed(),
                height: sg.height() as u64,
                cursor: sg.cursor(),
            },
            RetryPolicy::default(),
            &Recorder::disabled(),
        )
        .unwrap();
    }

    let cp = rrs::io::read_checkpoint_file(&ckpt).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(cp.cursor, 3 * STRIP_W as i64);
    let mut resumed =
        StripGenerator::try_from_generator(generator(), cp.height as usize, cp.seed).unwrap();
    resumed.seek(cp.cursor);
    let (reference, _) = run_stream(stream(Budget::unlimited()));
    emitted.extend(run_stream(resumed).0);
    assert_eq!(emitted.len(), N_STRIPS);
    for (i, (got, want)) in emitted.iter().zip(&reference).enumerate() {
        assert_eq!(got.as_slice(), want.as_slice(), "strip {i} differs after resume");
    }
}

// --- The FFT overlap-save backend honours the same budget contract. ---

fn fft_generator() -> ConvolutionGenerator {
    let s = Gaussian::new(SurfaceParams::isotropic(1.0, 4.0));
    ConvolutionGenerator::new(&s, KernelSizing::Explicit(GridSpec::unit(16, 16)))
        .with_workers(2)
        .with_backend(ConvBackend::FftOverlapSave)
}

#[test]
fn fft_backend_polls_budget_at_tile_granularity() {
    use rrs::obs::stage;
    // An armed-but-idle budget must poll at least once per overlap-save
    // tile — that is the granularity at which cancellation can take
    // effect — and must not change a single output bit.
    let noise = NoiseField::new(SEED);
    let win = Window::sized(96, 96);
    let plain = fft_generator().generate(&noise, win);

    let rec = Recorder::enabled();
    let armed = fft_generator().with_recorder(rec.clone()).with_budget(
        Budget::unlimited()
            .with_cancel_token(CancelToken::new())
            .with_timeout(Duration::from_secs(3600)),
    );
    assert_eq!(armed.try_generate(&noise, win).unwrap(), plain);
    let report = rec.report();
    let tiles = report.counter(stage::CONV_FFT_TILES);
    let polls = report.counter(stage::BUDGET_POLLS);
    assert_eq!(report.counter(stage::CONV_BACKEND_FFT), 1);
    assert!(tiles >= 1, "the FFT engine must tile the window");
    assert!(polls >= tiles, "one budget poll per tile minimum: {polls} polls, {tiles} tiles");
}

#[test]
fn fft_backend_rejections_match_the_direct_contract() {
    let noise = NoiseField::new(SEED);
    // Pre-cancelled: the pre-flight check fires before the huge window
    // (or any FFT scratch) is allocated.
    let token = CancelToken::new();
    token.cancel();
    let gen = fft_generator().with_budget(Budget::unlimited().with_cancel_token(token));
    let huge = Window::new(0, 0, 1 << 30, 1 << 30);
    let err = gen.try_generate(&noise, huge).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::Cancelled);

    // Expired deadline: deterministic across calls, like the direct path.
    let expired = fft_generator()
        .with_budget(Budget::unlimited().with_deadline(Instant::now() - Duration::from_secs(1)));
    for _ in 0..3 {
        let err = expired.try_generate(&noise, Window::sized(32, 32)).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::DeadlineExceeded, "deterministic across calls");
    }

    // Admission control counts the complex tile scratch the FFT engine
    // needs on top of the window and output, and still fires before any
    // of it is allocated.
    let gen = fft_generator().with_budget(Budget::unlimited().with_max_bytes(1 << 20));
    let err = gen.try_generate(&noise, huge).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::BudgetExceeded);
}

#[test]
fn fft_stream_cursor_does_not_advance_on_cancel() {
    let token = CancelToken::new();
    let mut sg = StripGenerator::from_generator(
        fft_generator().with_budget(Budget::unlimited().with_cancel_token(token.clone())),
        NY,
        SEED,
    );
    let first = sg.next_strip(STRIP_W);
    assert_eq!(sg.cursor(), STRIP_W as i64);
    token.cancel();
    let err = sg.try_next_strip(STRIP_W).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::Cancelled);
    assert_eq!(sg.cursor(), STRIP_W as i64, "failed FFT strip must not advance the cursor");
    // The emitted prefix still matches an unbudgeted FFT stream.
    let mut fresh = StripGenerator::from_generator(fft_generator(), NY, SEED);
    assert_eq!(fresh.next_strip(STRIP_W), first);
}
