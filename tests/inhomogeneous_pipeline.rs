//! Cross-crate integration: the inhomogeneous generator end to end.

use rrs::prelude::*;
use rrs::spectrum::Spectrum;

fn sm(h: f64, cl: f64) -> SpectrumModel {
    SpectrumModel::gaussian(SurfaceParams::isotropic(h, cl))
}

fn sizing() -> KernelSizing {
    KernelSizing::Auto { factor: 8.0, min: 16, max: 160 }
}

/// A two-point point-oriented layout and a half-plane plate layout with
/// the same two spectra must agree statistically deep inside the pure
/// zones (they differ only in how they describe the same geometry).
#[test]
fn plate_and_point_methods_agree_in_pure_zones() {
    let left = sm(0.6, 5.0);
    let right = sm(1.8, 8.0);
    let t = 12.0;

    let plate_layout = PlateLayout::new(
        vec![Plate { region: Region::HalfPlane { a: 1.0, b: 0.0, c: 64.0 }, spectrum: left }],
        Some(right),
        t,
    );
    let point_layout = PointLayout::new(
        vec![
            RepresentativePoint { x: 0.0, y: 64.0, spectrum: left },
            RepresentativePoint { x: 128.0, y: 64.0, spectrum: right },
        ],
        t / 2.0,
    );
    let noise = NoiseField::new(21);
    let plates = InhomogeneousGenerator::new(plate_layout, sizing()).with_workers(2);
    let points = InhomogeneousGenerator::new(point_layout, sizing()).with_workers(2);
    let fa = plates.generate(&noise, Window::new(0, 0, 128, 128));
    let fb = points.generate(&noise, Window::new(0, 0, 128, 128));

    // Same noise, same kernels, same pure-zone weights ⇒ identical
    // samples away from the (differently parameterised) transitions.
    let mut max_err: f64 = 0.0;
    for iy in 0..128usize {
        for ix in 0..36usize {
            max_err = max_err.max((fa.get(ix, iy) - fb.get(ix, iy)).abs());
            max_err = max_err.max((fa.get(127 - ix, iy) - fb.get(127 - ix, iy)).abs());
        }
    }
    assert!(max_err < 1e-12, "pure zones differ by {max_err}");
}

/// Transition width actually controls the blend extent: with a wide strip
/// the variance profile across the boundary is gradual; with a narrow one
/// it is sharp.
#[test]
fn transition_width_controls_blend_extent() {
    let profile_of = |t: f64| -> Vec<f64> {
        let layout = PlateLayout::new(
            vec![Plate {
                region: Region::HalfPlane { a: 1.0, b: 0.0, c: 96.0 },
                spectrum: sm(0.3, 4.0),
            }],
            Some(sm(2.0, 4.0)),
            t,
        );
        let gen = InhomogeneousGenerator::new(layout, sizing()).with_workers(2);
        // Ensemble of 6 seeds for a stable variance profile.
        let mut acc = [0.0f64; 24];
        for seed in 0..6u64 {
            let f = gen.generate(&NoiseField::new(seed), Window::new(0, 0, 192, 96));
            for (bi, a) in acc.iter_mut().enumerate() {
                let col = f.window(bi * 8, 0, 8, 96);
                *a += col.as_slice().iter().map(|v| v * v).sum::<f64>() / col.len() as f64;
            }
        }
        acc.iter().map(|v| (v / 6.0).sqrt()).collect()
    };
    let narrow = profile_of(4.0);
    let wide = profile_of(64.0);
    // Between x=88 and x=104 the narrow profile must complete most of its
    // rise; the wide one must still be mid-transition.
    let rise = |p: &[f64], x: usize| (p[x / 8] - p[0]) / (p[23] - p[0]);
    assert!(rise(&narrow, 112) > 0.8, "narrow rise {}", rise(&narrow, 112));
    assert!(rise(&wide, 112) < 0.8, "wide rise {}", rise(&wide, 112));
}

/// Inhomogeneous windows tile seamlessly — the streaming property carries
/// over from the homogeneous generator.
#[test]
fn inhomogeneous_windows_tile_seamlessly() {
    let pond = Plate {
        region: Region::Circle { cx: 50.0, cy: 50.0, r: 30.0 },
        spectrum: SpectrumModel::exponential(SurfaceParams::isotropic(0.2, 5.0)),
    };
    let layout = PlateLayout::new(vec![pond], Some(sm(1.0, 5.0)), 8.0);
    let gen = InhomogeneousGenerator::new(layout, sizing()).with_workers(3);
    let noise = NoiseField::new(4);
    let whole = gen.generate(&noise, Window::new(0, 0, 100, 100));
    for &(x0, y0, w, h) in &[(0i64, 0i64, 50usize, 50usize), (50, 0, 50, 50), (25, 60, 60, 40)] {
        let part = gen.generate(&noise, Window::new(x0, y0, w, h));
        for iy in 0..h {
            for ix in 0..w {
                assert_eq!(
                    *part.get(ix, iy),
                    *whole.get(ix + x0 as usize, iy + y0 as usize),
                    "seam at ({ix},{iy}) of window ({x0},{y0},{w},{h})"
                );
            }
        }
    }
}

/// Heights of an inhomogeneous surface stay Gaussian in every pure
/// region (the generator is linear in Gaussian noise everywhere).
#[test]
fn inhomogeneous_regions_remain_gaussian() {
    let layout = PlateLayout::new(
        vec![Plate {
            region: Region::HalfPlane { a: 1.0, b: 0.0, c: 96.0 },
            spectrum: sm(0.5, 4.0),
        }],
        Some(sm(2.0, 6.0)),
        10.0,
    );
    let gen = InhomogeneousGenerator::new(layout, sizing()).with_workers(2);
    // Generate a wide surface and pool decorrelated samples: the JB and
    // KS tests assume i.i.d. input, so subsample at ≥ 2·cl stride and
    // pool several seeds.
    for (x0, w, target_h, cl) in [(0usize, 80usize, 0.5f64, 4.0f64), (112, 80, 2.0, 6.0)] {
        let stride = (2.0 * cl).ceil() as usize;
        let mut samples = Vec::new();
        for seed in 0..8u64 {
            let f = gen.generate(&NoiseField::new(seed), Window::sized(192, 192));
            let win = f.window(x0, 0, w, 192);
            for iy in (0..192).step_by(stride) {
                for ix in (0..w).step_by(stride) {
                    samples.push(*win.get(ix, iy));
                }
            }
        }
        let r = rrs::stats::normality::jarque_bera_test(&samples);
        assert!(r.passes(0.001), "JB fails in region at x0={x0}: p = {}", r.p_value);
        let ks = rrs::stats::normality::ks_test_normal(&samples, 0.0, target_h);
        assert!(ks.passes(0.001), "KS fails in region at x0={x0}: p = {}", ks.p_value);
        let measured =
            (samples.iter().map(|v| v * v).sum::<f64>() / samples.len() as f64).sqrt();
        assert!(
            (measured - target_h).abs() < 0.3 * target_h,
            "region at {x0}: h_hat {measured} vs {target_h}"
        );
    }
}

/// Kernel truncation is a controlled approximation: statistics survive
/// aggressive truncation within the documented energy bound.
#[test]
fn truncated_inhomogeneous_generation_stays_faithful() {
    let layout = PlateLayout::new(vec![], Some(sm(1.0, 6.0)), 4.0);
    let exact = InhomogeneousGenerator::new(layout.clone(), sizing()).with_workers(1);
    let trunc =
        InhomogeneousGenerator::new_truncated(layout, sizing(), 0.05).with_workers(1);
    assert!(trunc.kernels()[0].extent().0 < exact.kernels()[0].extent().0);
    let noise = NoiseField::new(6);
    let fe = exact.generate(&noise, Window::new(0, 0, 160, 160));
    let ft = trunc.generate(&noise, Window::new(0, 0, 160, 160));
    // Pointwise difference bounded by the truncated tail's contribution.
    let rms_diff = (fe
        .as_slice()
        .iter()
        .zip(ft.as_slice())
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        / fe.len() as f64)
        .sqrt();
    assert!(rms_diff < 0.08, "rms diff {rms_diff}");
    assert!((ft.std_dev() - 1.0).abs() < 0.15);
}

/// The weight maps plug into validation: every figure-style region
/// report carries the right expected 1/e crossing for its family.
#[test]
fn expected_crossings_respect_spectrum_family() {
    let g = sm(1.0, 10.0);
    let e = SpectrumModel::exponential(SurfaceParams::isotropic(1.0, 10.0));
    let p3 = SpectrumModel::power_law(SurfaceParams::isotropic(1.0, 10.0), 3.0);
    let cross = |m: &SpectrumModel| rrs::stats::validate::expected_inv_e_crossing(m, true);
    assert!((cross(&g) - 10.0).abs() < 1e-6, "gaussian crossing {}", cross(&g));
    assert!((cross(&e) - 10.0).abs() < 1e-6, "exponential crossing {}", cross(&e));
    let c3 = cross(&p3);
    assert!(c3 > 20.0 && c3 < 30.0, "power-law N=3 crossing {c3}");
    // Sanity: the model correlation really is 1/e there.
    assert!((p3.correlation(c3, 0.0) - (-1.0f64).exp()).abs() < 1e-9);
}
