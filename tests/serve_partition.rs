//! Partition-torture suite for the resilient serving layer: multiple
//! in-process servers, a `ShardedClient` routing by rendezvous hashing
//! on the coalescing key, and seeded wire-level chaos killing or
//! stalling endpoints mid-pipelined-batch.
//!
//! The headline invariant is the paper's own (PAPER.md §1.3): a window
//! is a pure function of (seed, spectrum, window), so no matter which
//! endpoint ultimately serves a request — first choice, failover, or a
//! retry after a torn frame — the bits must be FNV-1a identical to
//! direct in-process generation. Failover, retry and breaker activity
//! are asserted through the `serve/client_*` obs counters, and chaos
//! runs replay bit-for-bit from their schedules.

use rrs::obs::stage;
use rrs::prelude::*;
use rrs::serve::wire::{self, FrameKind};
use rrs::serve::serve;

fn spectrum() -> SpectrumModel {
    SpectrumModel::gaussian(SurfaceParams::isotropic(1.2, 5.0))
}

/// The direct in-process reference for a served request.
fn direct(truncation: f64, seed: u64, win: Window) -> Grid2<f64> {
    let kernel = ConvolutionKernel::build(
        &spectrum(),
        KernelSizing::Auto { factor: 6.0, min: 8, max: 64 },
    )
    .try_truncated(truncation)
    .expect("valid epsilon");
    ConvolutionGenerator::from_kernel(kernel).generate(&NoiseField::new(seed), win)
}

/// FNV-1a over the window's little-endian f64 bytes — the suite's
/// bit-identity fingerprint.
fn hash_grid(g: &Grid2<f64>) -> u64 {
    let mut bytes = Vec::with_capacity(g.as_slice().len() * 8);
    for v in g.as_slice() {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    wire::fnv1a(&bytes)
}

/// A request whose shard key varies with `key` (distinct truncations
/// land on distinct kernels, hence — usually — distinct endpoints).
fn request(id: u64, key: usize, seed: u64, win: Window) -> GenerateRequest {
    GenerateRequest::new(id, 0, seed, spectrum(), win)
        .with_truncation(truncation_of(key))
        .with_sizing(6.0, 8, 64)
}

fn truncation_of(key: usize) -> f64 {
    1e-4 * (1.0 + key as f64)
}

/// Small, deterministic single-lane servers: one worker, no batching,
/// so response order equals admission order and chaos replays exactly.
fn lane_config() -> ServeConfig {
    ServeConfig { workers: 1, max_batch: 1, ..ServeConfig::default() }
}

#[test]
fn failover_around_a_dead_endpoint_is_bit_identical_and_counted() {
    let live_a = serve(lane_config()).expect("bind a");
    let live_b = serve(lane_config()).expect("bind b");
    let dead = serve(lane_config()).expect("bind c");
    let endpoints =
        vec![live_a.addr().to_string(), live_b.addr().to_string(), dead.addr().to_string()];
    dead.shutdown(); // connections now refused — a genuinely dead shard

    let mut sharded = ShardedClient::new(ShardedConfig::new(endpoints)).expect("construct");
    let win = Window::new(-4, 2, 24, 20);

    // Find a kernel key the pure HRW routing pins to the dead endpoint,
    // so the failover path is exercised by construction, not by luck.
    let doomed_key = (0..64)
        .find(|&k| sharded.primary_endpoint(&request(1, k, 1, win)) == 2)
        .expect("64 kernel keys must hit all 3 endpoints");

    // Three straight failures open the dead endpoint's breaker; the
    // later doomed requests must then skip it without paying a connect.
    for (i, key) in
        [doomed_key, doomed_key, doomed_key, doomed_key, 0, 1, doomed_key].iter().enumerate()
    {
        let seed = 0xA5A5 + i as u64;
        let req = request(i as u64 + 1, *key, seed, win);
        let served = sharded.generate(&req).expect("failover must succeed");
        assert_eq!(
            hash_grid(&served),
            hash_grid(&direct(truncation_of(*key), seed, win)),
            "request {i} (key {key}): served window diverged from direct generation"
        );
    }

    let report = sharded.report();
    assert!(
        report.counter(stage::SERVE_CLIENT_FAILOVER) >= 1,
        "routing to a dead endpoint must be visible as serve/client_failover: {}",
        report.to_json("")
    );
    // Three failures opened the dead endpoint's breaker; the third
    // doomed request skipped it without paying a connect.
    assert!(
        report.counter(stage::SERVE_CLIENT_BREAKER_SKIP) >= 1,
        "the dead endpoint's breaker never opened: {}",
        report.to_json("")
    );
    live_a.shutdown();
    live_b.shutdown();
}

#[test]
fn seeded_chaos_mid_batch_loses_no_window_and_corrupts_none() {
    // Both servers tear a response frame mid-write at their 3rd write;
    // the client additionally fails its first connect, tears a request
    // frame, stalls a read, and has a read hang up cleanly.
    let server_chaos = || {
        ChaosInjector::new(
            FaultSchedule::new(7).with_fault(FaultSite::FrameWrite, FaultKind::Error, 2),
        )
    };
    let chaos_a = server_chaos();
    let chaos_b = server_chaos();
    let a = serve(ServeConfig { chaos: chaos_a.clone(), ..lane_config() }).expect("bind a");
    let b = serve(ServeConfig { chaos: chaos_b.clone(), ..lane_config() }).expect("bind b");

    let client_chaos = ChaosInjector::new(
        FaultSchedule::new(11)
            .with_fault(FaultSite::EndpointConnect, FaultKind::Error, 0)
            .with_fault(FaultSite::FrameWrite, FaultKind::Error, 4)
            .with_fault(FaultSite::FrameRead, FaultKind::Deadline, 3)
            .with_fault(FaultSite::FrameRead, FaultKind::Cancel, 7),
    );
    let mut config =
        ShardedConfig::new(vec![a.addr().to_string(), b.addr().to_string()]);
    config.client.chaos = client_chaos.clone();
    config.client.chaos_stall = std::time::Duration::from_millis(25);
    let mut sharded = ShardedClient::new(config).expect("construct");

    let win = Window::sized(20, 16);
    let reqs: Vec<GenerateRequest> =
        (0..10).map(|i| request(i as u64 + 1, i % 4, 0x50 + i as u64, win)).collect();
    let results = sharded.generate_batch(&reqs);

    for (i, result) in results.iter().enumerate() {
        let served = result.as_ref().expect("every window completes despite chaos");
        assert_eq!(
            hash_grid(served),
            hash_grid(&direct(truncation_of(i % 4), 0x50 + i as u64, win)),
            "request {i}: chaos corrupted a window"
        );
    }
    assert!(
        client_chaos.injected() >= 3,
        "client-side faults must actually fire, injected = {}",
        client_chaos.injected()
    );
    assert!(
        chaos_a.injected() + chaos_b.injected() >= 1,
        "at least one server must reach its torn-write fault"
    );
    let report = sharded.report();
    assert!(
        report.counter(stage::SERVE_CLIENT_CONNECT) >= 2,
        "failed connects and poisoned connections force reconnects: {}",
        report.to_json("")
    );
    a.shutdown();
    b.shutdown();
}

#[test]
fn chaos_schedules_replay_bit_for_bit() {
    // Same servers (so the endpoint list — and therefore the pure HRW
    // routing — is identical), fresh client + fresh injector per run,
    // identical schedules: every window hash, every fault count, every
    // visit counter and every resilience counter must replay exactly.
    let a = serve(lane_config()).expect("bind a");
    let b = serve(lane_config()).expect("bind b");
    let endpoints = vec![a.addr().to_string(), b.addr().to_string()];
    let win = Window::sized(18, 14);

    let run = |endpoints: &[String]| {
        let chaos = ChaosInjector::new(
            FaultSchedule::new(23)
                .with_fault(FaultSite::EndpointConnect, FaultKind::Error, 1)
                .with_fault(FaultSite::FrameRead, FaultKind::Cancel, 5)
                .with_fault(FaultSite::FrameWrite, FaultKind::Error, 6),
        );
        let mut config = ShardedConfig::new(endpoints.to_vec());
        config.client.chaos = chaos.clone();
        config.seed = 99; // jitter stream seed
        let mut sharded = ShardedClient::new(config).expect("construct");
        let reqs: Vec<GenerateRequest> =
            (0..8).map(|i| request(i as u64 + 1, i % 3, 0x90 + i as u64, win)).collect();
        let hashes: Vec<u64> = sharded
            .generate_batch(&reqs)
            .into_iter()
            .map(|r| hash_grid(&r.expect("completes")))
            .collect();
        let report = sharded.report();
        let counters: Vec<u64> = [
            stage::SERVE_CLIENT_RETRY,
            stage::SERVE_CLIENT_FAILOVER,
            stage::SERVE_CLIENT_BREAKER_SKIP,
            stage::SERVE_CLIENT_CONNECT,
        ]
        .iter()
        .map(|s| report.counter(s))
        .collect();
        let visits: Vec<u64> =
            FaultSite::NETWORK.iter().map(|&s| chaos.visits(s)).collect();
        (hashes, counters, visits, chaos.injected())
    };

    let first = run(&endpoints);
    let second = run(&endpoints);
    assert_eq!(first, second, "chaos replay must be bit-for-bit identical");
    // And the chaos actually did something both times.
    assert!(first.3 >= 2, "faults must fire during the replayed runs");
    a.shutdown();
    b.shutdown();
}

#[test]
fn draining_rejects_typed_finishes_the_queue_and_flushes_responses() {
    let server = serve(lane_config()).expect("bind");
    let addr = server.addr();
    let mut client = Client::connect(addr).expect("connect");

    // Occupy the single worker with a deliberately heavy Direct job
    // (single in-generator worker, ~4·10⁹ multiply-adds — seconds on
    // any machine), and queue three fast jobs behind it, so the drain
    // is still in progress when the probe below arrives.
    let slow = GenerateRequest::new(1, 0, 1, spectrum(), Window::sized(512, 512))
        .with_sizing(12.0, 128, 128)
        .with_workers(1)
        .with_backend(ConvBackend::Direct);
    client.send(&slow).expect("send slow");
    let win = Window::sized(16, 16);
    for i in 0..3u64 {
        client.send(&request(2 + i, 0, 10 + i, win)).expect("send queued");
    }
    std::thread::sleep(std::time::Duration::from_millis(150)); // all admitted

    let drainer = std::thread::spawn(move || server.drain());
    std::thread::sleep(std::time::Duration::from_millis(150)); // flag is up

    // New work is rejected with the typed, retryable Draining kind...
    client.send(&request(9, 0, 99, win)).expect("send probe");
    let mut outcomes = std::collections::HashMap::new();
    for _ in 0..5 {
        let (id, outcome) = client.recv().expect("all responses flush before close");
        outcomes.insert(id, outcome);
    }
    match outcomes.remove(&9).expect("probe answered") {
        Err(ServeError::Remote(e)) => {
            assert_eq!(e.kind, ErrorKind::Draining, "typed draining rejection");
            assert!(e.kind.is_retryable(), "Draining must be retryable for failover");
        }
        other => panic!("expected a Draining rejection, got {other:?}"),
    }
    // ...while every admitted job completed and flushed, bit-correct.
    outcomes.remove(&1).expect("slow job answered").expect("slow job served");
    for i in 0..3u64 {
        let grid = outcomes.remove(&(2 + i)).expect("queued job answered").expect("served");
        assert_eq!(hash_grid(&grid), hash_grid(&direct(truncation_of(0), 10 + i, win)));
    }

    let report = drainer.join().expect("drain returns");
    assert!(
        report.counter(stage::SERVE_DRAINING_REJECT) >= 1,
        "the probe rejection must tick serve/draining_reject: {}",
        report.to_json("")
    );
    assert_eq!(report.counter(stage::SERVE_GENERATE), 4, "exactly the admitted jobs ran");

    // The drained server is gone: new connections fail typed + retryable.
    match Client::connect(addr) {
        Err(ServeError::Transport(e)) => {
            assert_eq!(e.kind(), ErrorKind::Unavailable);
            assert!(e.kind().is_retryable());
        }
        Ok(_) => panic!("drained server accepted a connection"),
        Err(other) => panic!("expected a transport error, got {other:?}"),
    }
}

#[test]
fn read_timeout_spares_a_quiet_connection_with_work_in_flight() {
    // A pipelining client goes quiet after sending: it is waiting on
    // responses, not slow-lorising. With queue wait + generation far
    // past the read deadline, the reader must keep the connection open
    // while requests are in flight — and reap it once it is truly idle.
    let config = ServeConfig {
        workers: 1,
        max_batch: 1,
        read_timeout: Some(std::time::Duration::from_millis(50)),
        ..ServeConfig::default()
    };
    let server = serve(config).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");

    // A deliberately heavy Direct job (single in-generator worker,
    // ~1.7·10⁹ multiply-adds), with a fast job queued behind it — both
    // responses land long after 50 ms.
    let slow = GenerateRequest::new(1, 0, 1, spectrum(), Window::sized(320, 320))
        .with_sizing(12.0, 128, 128)
        .with_workers(1)
        .with_backend(ConvBackend::Direct);
    client.send(&slow).expect("send slow");
    let win = Window::sized(16, 16);
    client.send(&request(2, 0, 9, win)).expect("send fast behind it");

    for _ in 0..2 {
        let (id, outcome) = client.recv().expect("the deadline must not sever in-flight work");
        let grid = outcome.expect("served");
        if id == 2 {
            assert_eq!(hash_grid(&grid), hash_grid(&direct(truncation_of(0), 9, win)));
        }
    }

    // All responses flushed: the connection is now genuinely idle, so
    // the same deadline reaps it.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while server.report().counter(stage::SERVE_CONN_TIMEOUT) == 0 {
        assert!(std::time::Instant::now() < deadline, "idle connection was never reaped");
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    server.shutdown();
}

#[test]
fn slow_loris_peer_is_reaped_and_the_server_stays_available() {
    let config = ServeConfig {
        read_timeout: Some(std::time::Duration::from_millis(200)),
        ..ServeConfig::default()
    };
    let server = serve(config).expect("bind");

    // A peer that sends half a frame header and then goes quiet.
    use std::io::{Read, Write};
    let mut loris = std::net::TcpStream::connect(server.addr()).expect("connect");
    loris.write_all(&wire::MAGIC[..3]).expect("dribble");
    loris.flush().expect("flush");

    // The reader thread must reap the connection at the deadline.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while server.report().counter(stage::SERVE_CONN_TIMEOUT) == 0 {
        assert!(std::time::Instant::now() < deadline, "stalled peer was never reaped");
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    // Our end sees the close (EOF), not a hang.
    loris.set_read_timeout(Some(std::time::Duration::from_secs(5))).expect("timeout");
    let n = loris.read(&mut [0u8; 16]).expect("server closed cleanly");
    assert_eq!(n, 0, "expected EOF after the reap");

    // And the server still serves fresh connections.
    let mut client = Client::connect(server.addr()).expect("connect after reap");
    client.try_generate(&request(1, 0, 5, Window::sized(16, 16))).expect("still serving");
    server.shutdown();
}

#[test]
fn per_connection_in_flight_cap_rejects_with_connection_busy() {
    use rrs::serve::OverloadReason;
    let config = ServeConfig { workers: 1, max_conn_in_flight: 1, ..ServeConfig::default() };
    let server = serve(config).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");
    // The slot-holder: a Direct job slow on any machine — single
    // worker, ~4·10⁹ multiply-adds — so it is still generating when
    // the pipelined frame below is admitted.
    let slow = GenerateRequest::new(1, 0, 1, spectrum(), Window::sized(512, 512))
        .with_sizing(12.0, 128, 128)
        .with_workers(1)
        .with_backend(ConvBackend::Direct);
    client.send(&slow).expect("send slow");
    std::thread::sleep(std::time::Duration::from_millis(100)); // admitted
    client.send(&request(2, 0, 2, Window::sized(16, 16))).expect("send second");
    let mut saw_busy = false;
    for _ in 0..2 {
        let (id, outcome) = client.recv().expect("response");
        match outcome {
            Err(ServeError::Overloaded { reason: OverloadReason::ConnectionBusy, .. }) => {
                assert_eq!(id, 2, "the pipelined request is the rejected one");
                saw_busy = true;
            }
            Ok(_) => assert_eq!(id, 1, "only the slot-holder may succeed"),
            Err(e) => panic!("unexpected failure for request {id}: {e}"),
        }
    }
    assert!(saw_busy, "the per-connection cap never triggered");
    assert!(server.report().counter(stage::SERVE_CONN_BUSY) >= 1);
    server.shutdown();
}

#[test]
fn mid_frame_disconnect_over_tcp_at_every_boundary_is_typed_never_partial() {
    use std::io::{Read, Write};
    // A fake server that reads the request, then dies `keep` bytes into
    // a perfectly valid response frame — the TCP image of a server
    // crashing mid-write.
    let ok = wire::GenerateOk {
        request_id: 1,
        grid: Grid2::from_fn(4, 3, |x, y| (x as f64) - 0.5 * (y as f64)),
    };
    let mut clean = Vec::new();
    wire::write_frame(&mut clean, FrameKind::GenerateOk, &ok.encode()).expect("encode");
    let n = clean.len();

    let req = request(1, 0, 7, Window::sized(4, 3));
    let mut req_frame = Vec::new();
    wire::write_frame(&mut req_frame, FrameKind::Generate, &req.encode()).expect("encode");
    let req_len = req_frame.len();

    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let frame = clean.clone();
    let fake = std::thread::spawn(move || {
        for keep in 0..n {
            let (mut s, _) = listener.accept().expect("accept");
            // Drain the whole request so the close below is a clean FIN
            // (unread inbound bytes would turn it into an RST).
            let mut sink = vec![0u8; req_len];
            let _ = s.read_exact(&mut sink);
            s.write_all(&frame[..keep]).expect("truncated write");
            // drop(s): the connection dies `keep` bytes into the frame
        }
    });
    for keep in 0..n {
        let mut client = Client::connect(addr).expect("connect");
        match client.try_generate(&req) {
            Err(ServeError::Transport(e)) => {
                assert_eq!(
                    e.kind(),
                    ErrorKind::CorruptSnapshot,
                    "truncation at {keep}/{n} bytes must be a typed framing error, got {e}"
                );
            }
            Ok(_) => panic!("truncation at {keep}/{n} bytes yielded a (partial?) window"),
            Err(other) => panic!("truncation at {keep}/{n}: unexpected {other:?}"),
        }
    }
    fake.join().expect("fake server");
}
