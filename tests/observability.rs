//! Facade-level observability contract tests.
//!
//! Two promises hold the obs layer together: observation never steers
//! output (an enabled recorder produces the bit-identical surface the
//! silent path does), and every paper stage actually reports — kernel
//! build, window materialisation, the correlation inner loop, inhomo
//! kernel selection, streaming tiles. These tests pin both through the
//! public `rrs` facade, the way a downstream caller would wire it.

use rrs::obs::{stage, ObsSink};
use rrs::prelude::*;

fn spectrum() -> Gaussian {
    Gaussian::new(SurfaceParams::isotropic(1.0, 5.0))
}

fn sizing() -> KernelSizing {
    KernelSizing::Auto { factor: 6.0, min: 16, max: 64 }
}

/// Enabled vs disabled recorder: bit-identical homogeneous surfaces, and
/// the enabled run reports every homogeneous pipeline stage.
#[test]
fn convolution_observation_is_inert_and_complete() {
    let s = spectrum();
    let noise = NoiseField::new(0xAB5E_ED);
    let win = Window::new(-7, 3, 48, 40);

    let silent = ConvolutionGenerator::new(&s, sizing()).generate(&noise, win);
    let rec = Recorder::enabled();
    let observed = ConvolutionGenerator::new_observed(&s, sizing(), rec.clone())
        .generate(&noise, win);
    assert_eq!(silent, observed, "enabled recorder changed the surface");

    let report = rec.report();
    for stage_name in [
        stage::KERNEL_AMPLITUDE,
        stage::KERNEL_DFT,
        stage::KERNEL_PERMUTE,
        stage::WINDOW_MATERIALISE,
        stage::CORRELATE,
    ] {
        assert!(
            report.durations.contains_key(stage_name),
            "missing duration stage {stage_name}"
        );
    }
    assert_eq!(
        report.counters.get(stage::CORRELATE_SAMPLES).copied(),
        Some((48 * 40) as u64),
        "correlate sample counter must equal the window area"
    );
}

/// Same contract for the inhomogeneous generator: identical output and a
/// pure/blended sample split that partitions the window.
#[test]
fn inhomogeneous_observation_is_inert_and_complete() {
    let layout = || {
        PlateLayout::new(
            vec![Plate {
                region: Region::Rect { x0: 0.0, y0: 0.0, x1: 20.0, y1: 40.0 },
                spectrum: SpectrumModel::gaussian(SurfaceParams::isotropic(0.3, 4.0)),
            }],
            Some(SpectrumModel::gaussian(SurfaceParams::isotropic(1.2, 6.0))),
            8.0,
        )
    };
    let noise = NoiseField::new(99);
    let win = Window::sized(40, 32);

    let silent = InhomogeneousGenerator::new(layout(), sizing()).generate(&noise, win);
    let rec = Recorder::enabled();
    let observed = InhomogeneousGenerator::new(layout(), sizing())
        .with_recorder(rec.clone())
        .generate(&noise, win);
    assert_eq!(silent, observed, "enabled recorder changed the surface");

    let report = rec.report();
    let pure = report.counters.get(stage::INHOMO_PURE_SAMPLES).copied().unwrap_or(0);
    let blended = report.counters.get(stage::INHOMO_BLENDED_SAMPLES).copied().unwrap_or(0);
    assert_eq!(pure + blended, (40 * 32) as u64, "pure + blended must cover the window");
    assert!(blended > 0, "a transition band this wide must blend somewhere");
}

/// Streaming: the recorder follows `with_recorder` into the inner
/// generator and counts tiles without perturbing the stream.
#[test]
fn strip_generator_observation_counts_tiles() {
    let s = spectrum();
    let mut silent = StripGenerator::new(&s, sizing(), 32, 7);
    let rec = Recorder::enabled();
    let mut observed = StripGenerator::new(&s, sizing(), 32, 7).with_recorder(rec.clone());
    for _ in 0..3 {
        assert_eq!(silent.next_strip(16), observed.next_strip(16));
    }
    assert_eq!(rec.report().counters.get(stage::STRIP_TILES).copied(), Some(3));
}

/// A shared `GenContext` applied through `with_context` observes exactly
/// like the chained `with_recorder` sugar — one recorder, same bits.
#[test]
fn gen_context_threads_the_recorder_like_the_sugar_builder() {
    let s = spectrum();
    let noise = NoiseField::new(5);
    let win = Window::new(-3, 4, 20, 18);
    let rec = Recorder::enabled();
    let ctx = rrs::surface::GenContext::new().with_recorder(rec.clone());
    let via_ctx = ConvolutionGenerator::new(&s, sizing()).with_context(ctx);
    let sugar = ConvolutionGenerator::new(&s, sizing()).with_recorder(Recorder::enabled());
    assert_eq!(via_ctx.generate(&noise, win), sugar.generate(&noise, win));
    assert!(rec.report().durations.contains_key(stage::WINDOW_MATERIALISE));
}

/// A disabled recorder threaded through every hook stays empty and the
/// report renders as valid empty JSON.
#[test]
fn disabled_recorder_reports_nothing() {
    let rec = Recorder::disabled();
    let s = spectrum();
    let _ = ConvolutionGenerator::new_observed(&s, sizing(), rec.clone())
        .generate(&NoiseField::new(1), Window::sized(16, 16));
    rec.add_counter(stage::STRIP_TILES, 1); // no-op when disabled
    let report = rec.report();
    assert!(report.counters.is_empty());
    assert!(report.durations.is_empty());
    assert_eq!(report.to_json(""), "{\n  \"counters\": {},\n  \"durations\": {}\n}");
}

/// An enabled recorder's report renders parseable JSON with the expected
/// histogram fields for a real run.
#[test]
fn enabled_report_json_has_histogram_fields() {
    let rec = Recorder::enabled();
    let s = spectrum();
    let _ = ConvolutionGenerator::new_observed(&s, sizing(), rec.clone())
        .generate(&NoiseField::new(1), Window::sized(16, 16));
    let json = rec.report().to_json("");
    for needle in ["\"counters\"", "\"durations\"", "\"count\":", "\"total_ns\":", "\"buckets\":"] {
        assert!(json.contains(needle), "report JSON missing {needle}:\n{json}");
    }
}
