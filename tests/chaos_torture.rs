//! Whole-pipeline chaos torture suite.
//!
//! Drives a representative pipeline — an FFT-ladder strip stream, a
//! Direct-backend convolution, and a retrying checkpoint write — under a
//! seeded [`FaultSchedule`], across every [`FaultSite`] × [`FaultKind`]
//! combination, and pins the fault-model contract:
//!
//! * **no escaped panics** — an injected panic anywhere surfaces as a
//!   typed [`RrsError::WorkerPanicked`] or is absorbed by the backend
//!   degradation ladder, never an unwind through a public API;
//! * **typed outcomes** — every failed run's [`ErrorKind`] matches the
//!   injected kind (`Panic → WorkerPanicked`, `Error → FaultInjected`,
//!   `Cancel → Cancelled`, `Deadline → DeadlineExceeded`);
//! * **bit-identical degradation** — when both FFT rungs are killed, the
//!   Direct rung serves the request with output FNV-1a-hash-equal to a
//!   clean Direct run, and the degradation is visible in the obs report;
//! * **replayability** — the same schedule seed reproduces the same
//!   outcome and the same per-site visit counts bit-for-bit.

use rrs::io::ThreadSleeper;
use rrs::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

fn fnv1a(bits: impl Iterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for w in bits {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

fn hash_grid(g: &Grid2<f64>) -> u64 {
    fnv1a(g.as_slice().iter().map(|v| v.to_bits()))
}

/// Silences the default panic-hook noise for intentionally injected chaos
/// panics (they are caught and converted to typed errors; their backtrace
/// spam would drown the test output). Real panics still print.
fn quiet_chaos_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.starts_with("chaos: injected panic") {
                prev(info);
            }
        }));
    });
}

fn io_err() -> RrsError {
    RrsError::from(std::io::Error::other("transient disk wobble"))
}

fn tmp_dir() -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("rrs_chaos_torture_{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// One representative pass over the whole pipeline, single-worker so every
/// fault-site visit order is deterministic. A clean pass visits all six
/// sites:
///
/// * strip generation on the FFT ladder — `StripTile`,
///   `PlanCacheLookup`, `FftTile`;
/// * a Direct-backend convolution — `ParBandSlice`;
/// * a checkpoint write that fails once with a transient I/O error and is
///   retried — `RetrySleep` (before the backoff) and `CheckpointWrite`
///   (before each attempt).
///
/// Returns the FNV-1a hash of everything generated.
fn run_pipeline(chaos: &ChaosInjector, dir: &std::path::Path) -> Result<u64, RrsError> {
    let s = Gaussian::new(SurfaceParams::isotropic(1.0, 4.0));
    let sg = StripGenerator::new(&s, KernelSizing::default(), 16, 42)
        .with_backend(ConvBackend::FftOverlapSave)
        .with_chaos(chaos.clone());
    let strip = sg.try_strip_at(0, 12)?;

    let gen = ConvolutionGenerator::new(&s, KernelSizing::default())
        .with_workers(1)
        .with_backend(ConvBackend::Direct)
        .with_chaos(chaos.clone());
    let field = gen.try_generate(&NoiseField::new(7), Window::sized(12, 12))?;

    let fails = AtomicU32::new(1);
    let policy = RetryPolicy { max_attempts: 3, base_delay: Duration::from_micros(1) };
    let path = dir.join("torture.ckpt");
    let cp = StreamCheckpoint { seed: 42, height: 16, cursor: 12 };
    policy.run_with_sleeper_budgeted(
        &Recorder::disabled(),
        &ThreadSleeper,
        &Budget::unlimited(),
        chaos,
        &mut || {
            chaos.poll_contained(FaultSite::CheckpointWrite)?;
            if fails
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                .is_ok()
            {
                return Err(io_err());
            }
            write_checkpoint_file(&path, &cp)
        },
    )?;

    Ok(fnv1a(
        strip
            .as_slice()
            .iter()
            .chain(field.as_slice())
            .map(|v| v.to_bits()),
    ))
}

#[test]
fn armed_but_empty_schedule_visits_every_site_and_changes_nothing() {
    let dir = tmp_dir();
    let clean = run_pipeline(&ChaosInjector::disabled(), &dir).unwrap();
    // An armed schedule with no faults counts visits but injects nothing;
    // it must not change a single output bit.
    let counting = ChaosInjector::new(FaultSchedule::new(99));
    assert_eq!(run_pipeline(&counting, &dir).unwrap(), clean);
    assert_eq!(counting.injected(), 0);
    for site in FaultSite::PIPELINE {
        assert!(
            counting.visits(site) > 0,
            "pipeline never reached fault site {site:?}"
        );
    }
    // Network sites live in the serving transport seam; an in-process
    // pipeline run never touches them (the partition suite does).
    for site in FaultSite::NETWORK {
        assert_eq!(counting.visits(site), 0, "pipeline should not reach {site:?}");
    }
}

#[test]
fn every_site_and_kind_returns_typed_errors_or_degrades() {
    quiet_chaos_panics();
    let dir = tmp_dir();
    for site in FaultSite::ALL {
        for kind in FaultKind::ALL {
            for at_index in [0u64, 1] {
                let chaos = ChaosInjector::new(
                    FaultSchedule::new(1000).with_fault(site, kind, at_index),
                );
                let label = format!("{site:?}/{kind:?}@{at_index}");
                match run_pipeline(&chaos, &dir) {
                    Ok(_) => {
                        // A clean result is legal only if the fault never
                        // fired, or fired a degradable kind the backend
                        // ladder absorbed.
                        if chaos.injected() > 0 {
                            assert!(
                                matches!(kind, FaultKind::Panic | FaultKind::Error),
                                "{label}: non-degradable fault fired yet the run succeeded"
                            );
                        }
                    }
                    Err(e) => {
                        assert_eq!(chaos.injected(), 1, "{label}: fault must have fired");
                        let want = match kind {
                            FaultKind::Panic => ErrorKind::WorkerPanicked,
                            FaultKind::Error => ErrorKind::FaultInjected,
                            FaultKind::Cancel => ErrorKind::Cancelled,
                            FaultKind::Deadline => ErrorKind::DeadlineExceeded,
                            _ => unreachable!(),
                        };
                        assert_eq!(e.kind(), want, "{label}: {e}");
                    }
                }
            }
        }
    }
}

#[test]
fn killing_both_fft_rungs_degrades_to_direct_hash_equal() {
    quiet_chaos_panics();
    let s = Gaussian::new(SurfaceParams::isotropic(1.0, 4.0));
    let noise = NoiseField::new(29);
    let win = Window::sized(20, 20);
    let clean_hash = hash_grid(
        &ConvolutionGenerator::new(&s, KernelSizing::default())
            .with_workers(1)
            .with_backend(ConvBackend::Direct)
            .generate(&noise, win),
    );
    // Serial tile loops visit FftTile deterministically: visit 0 kills
    // the overlap-save rung, visit 1 the complex-serial rung, and the
    // Direct rung serves the request.
    let chaos = ChaosInjector::new(
        FaultSchedule::new(3)
            .with_fault(FaultSite::FftTile, FaultKind::Panic, 0)
            .with_fault(FaultSite::FftTile, FaultKind::Error, 1),
    );
    let rec = Recorder::enabled();
    let got = ConvolutionGenerator::new(&s, KernelSizing::default())
        .with_workers(1)
        .with_backend(ConvBackend::FftOverlapSave)
        .with_recorder(rec.clone())
        .with_chaos(chaos.clone())
        .try_generate(&noise, win)
        .unwrap();
    assert_eq!(
        hash_grid(&got),
        clean_hash,
        "degraded output must hash identically to a clean Direct run"
    );
    assert_eq!(chaos.visits(FaultSite::FftTile), 2, "one tile poll per failed rung");
    let report = rec.report();
    assert_eq!(report.counter("conv/degraded_to_fft_serial"), 1);
    assert_eq!(report.counter("conv/degraded_to_direct"), 1);
    assert_eq!(report.counter("conv/backend_direct"), 1);
}

#[test]
fn seeded_schedules_replay_bit_for_bit() {
    quiet_chaos_panics();
    let dir = tmp_dir();
    for seed in [1u64, 17, 0xDEAD_BEEF] {
        let run = |schedule: FaultSchedule| {
            let chaos = ChaosInjector::new(schedule);
            let outcome = match run_pipeline(&chaos, &dir) {
                Ok(h) => Ok(h),
                Err(e) => Err(e.to_string()),
            };
            let visits: Vec<u64> = FaultSite::ALL.iter().map(|&s| chaos.visits(s)).collect();
            (outcome, visits, chaos.injected())
        };
        let a = run(FaultSchedule::seeded(seed, 3, 4));
        let b = run(FaultSchedule::seeded(seed, 3, 4));
        assert_eq!(a, b, "seed {seed}: replay must be bit-for-bit identical");
    }
}

#[test]
fn degraded_strip_stream_still_tiles_seamlessly() {
    quiet_chaos_panics();
    // Kill both FFT rungs for the first strip only; later strips run the
    // FFT path. The degraded strip must still tile seamlessly against
    // its neighbours because the Direct rung computes the same sum.
    let s = Gaussian::new(SurfaceParams::isotropic(1.0, 5.0));
    let clean = StripGenerator::new(&s, KernelSizing::default(), 24, 11)
        .with_backend(ConvBackend::Direct);
    let chaos = ChaosInjector::new(
        FaultSchedule::new(5)
            .with_fault(FaultSite::FftTile, FaultKind::Panic, 0)
            .with_fault(FaultSite::FftTile, FaultKind::Error, 1),
    );
    let faulted = StripGenerator::new(&s, KernelSizing::default(), 24, 11)
        .with_backend(ConvBackend::FftOverlapSave)
        .with_chaos(chaos);
    let degraded = faulted.try_strip_at(0, 8).unwrap();
    assert_eq!(
        hash_grid(&degraded),
        hash_grid(&clean.strip_at(0, 8)),
        "degraded strip must be bit-identical to the Direct reference"
    );
}
