//! Deterministic regression cases distilled from historical property-test
//! failures (formerly `.proptest-regressions` seed files).
//!
//! Each case pins the exact shrunk input that once broke an assertion, so
//! the fix stays observable without depending on any particular RNG
//! replay format.

use rrs::prelude::*;

/// Shrunk from `kernel_energy_equals_variance`: h = 0.1, cl = 3.0,
/// family = exponential. The Exponential family's K⁻³ spectral tail loses
/// ≈ 1/(π·cl) of its energy to Nyquist truncation; the assertion bound
/// must account for that analytically instead of a flat tolerance.
#[test]
fn exponential_kernel_energy_at_small_h_short_cl() {
    let (h, cl) = (0.1, 3.0);
    let s = SpectrumModel::exponential(SurfaceParams::isotropic(h, cl));
    let k = ConvolutionKernel::build(&s, KernelSizing::Auto { factor: 10.0, min: 32, max: 256 });
    let rel = (k.energy() - h * h).abs() / (h * h);
    let bound = 0.02 + 1.5 / (core::f64::consts::PI * cl);
    assert!(rel < bound, "relative energy error {rel} exceeds analytic tail bound {bound}");
}

/// Shrunk from `weight_array_is_non_negative_and_sums_to_variance`:
/// PowerLaw n = 2.0 with long, strongly anisotropic correlation lengths.
/// The lattice must span several correlation lengths per axis before the
/// Riemann sum over the sharp spectral peak converges to h².
#[test]
fn power_law_weight_sum_with_long_anisotropic_lengths() {
    use rrs::spectrum::{weight_array, GridSpec};
    let p = SurfaceParams::new(1.9844031021393171, 27.287569486112787, 20.4034294982157);
    let m = SpectrumModel::power_law(p, 2.0);
    let pick = |cl: f64| ((8.0 * cl).ceil() as usize).next_power_of_two().clamp(32, 512);
    let spec = GridSpec::unit(pick(p.clx), pick(p.cly));
    let w = weight_array(&m, spec);
    assert!(w.as_slice().iter().all(|&v| v >= 0.0));
    let total: f64 = w.as_slice().iter().sum();
    let v = p.variance();
    assert!(
        total <= 1.2 * v + 1e-12 && total >= 0.6 * v,
        "Σw = {total}, h² = {v}"
    );
}
