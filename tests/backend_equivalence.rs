//! Backend equivalence and bit-identity regression suite.
//!
//! Three contracts pin the convolution backends:
//!
//! * `ConvBackend::FftOverlapSave` (the parallel real-input pipeline) and
//!   `ConvBackend::FftComplexSerial` (the preserved complex baseline)
//!   compute the *same sum* as `ConvBackend::Direct` in the frequency
//!   domain — equal within 1e-9 relative error across spectrum families,
//!   anisotropic correlation lengths, truncated and full kernels,
//!   worker counts, and strip-tile seams — and the real-input engine is
//!   bit-identical across worker counts;
//! * `ConvBackend::Direct` is the reference: its output is bit-identical
//!   to the seed release (FNV-1a hashes of the f64 bit patterns captured
//!   from the pre-backend build), so every regression seed and
//!   resume/budget guarantee survives the backend refactor and the
//!   vectorised inner-loop restructure.

use rrs::prelude::*;
use rrs_check::{from_fn, Gen};

fn fnv1a(bits: impl Iterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for w in bits {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

fn hash_grid(g: &Grid2<f64>) -> u64 {
    fnv1a(g.as_slice().iter().map(|v| v.to_bits()))
}

/// Asserts two grids agree within `tol` relative to the reference's
/// largest magnitude.
fn assert_close(reference: &Grid2<f64>, other: &Grid2<f64>, tol: f64, what: &str) {
    assert_eq!(reference.shape(), other.shape(), "{what}: shape");
    let scale = reference
        .as_slice()
        .iter()
        .map(|v| v.abs())
        .fold(0.0, f64::max)
        .max(1e-30);
    let max_rel = reference
        .as_slice()
        .iter()
        .zip(other.as_slice())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max)
        / scale;
    assert!(max_rel <= tol, "{what}: max relative error {max_rel:e} > {tol:e}");
}

// --- Bit-identity: Direct output is unchanged from the seed release. ---

#[test]
fn direct_backend_is_bit_identical_to_seed() {
    // Hashes captured from the pre-backend build (commit d2106fd).
    let s1 = Gaussian::new(SurfaceParams::isotropic(1.0, 4.0));
    let g1 = ConvolutionGenerator::new(&s1, KernelSizing::default())
        .with_workers(1)
        .generate(&NoiseField::new(5), Window::sized(32, 16));
    assert_eq!(hash_grid(&g1), 0xd4354263c73d2f76, "full kernel, serial");

    let s2 = Gaussian::new(SurfaceParams::new(1.3, 6.0, 4.0));
    let k2 = ConvolutionKernel::build(&s2, KernelSizing::default()).truncated(1e-3);
    let g2 = ConvolutionGenerator::from_kernel(k2)
        .with_workers(3)
        .generate(&NoiseField::new(41), Window::new(-7, 3, 40, 28));
    assert_eq!(hash_grid(&g2), 0x05f15a8657760fab, "truncated aniso kernel, workers=3");

    let s3 = Exponential::new(SurfaceParams::new(0.8, 3.0, 7.0));
    let k3 = ConvolutionKernel::build(&s3, KernelSizing::default()).truncated(1e-2);
    let g3 = ConvolutionGenerator::from_kernel(k3)
        .with_workers(2)
        .generate(&NoiseField::new(99), Window::new(11, -5, 33, 21));
    assert_eq!(hash_grid(&g3), 0x3128fd4cedb5fa8d, "exponential, offset window");
}

#[test]
fn strip_stream_is_bit_identical_to_seed() {
    let s = Gaussian::new(SurfaceParams::isotropic(1.0, 5.0));
    let mut sg = StripGenerator::new(&s, KernelSizing::default(), 24, 7);
    assert_eq!(hash_grid(&sg.next_strip(16)), 0x0e02845b448152b8, "strip 0");
    assert_eq!(hash_grid(&sg.next_strip(16)), 0x0eb0089b6b1be169, "strip 1");
}

// --- Deterministic FFT/Direct agreement cases. ---

fn generators(
    kernel: ConvolutionKernel,
) -> (ConvolutionGenerator, ConvolutionGenerator) {
    let direct = ConvolutionGenerator::from_kernel(kernel.clone())
        .with_workers(2)
        .with_backend(ConvBackend::Direct);
    let fft = ConvolutionGenerator::from_kernel(kernel)
        .with_workers(2)
        .with_backend(ConvBackend::FftOverlapSave);
    (direct, fft)
}

#[test]
fn fft_matches_direct_full_kernel() {
    let s = Gaussian::new(SurfaceParams::isotropic(1.2, 6.0));
    let k = ConvolutionKernel::build(&s, KernelSizing::default());
    let (direct, fft) = generators(k);
    let noise = NoiseField::new(314);
    let win = Window::new(-9, 14, 80, 52);
    assert_close(
        &direct.generate(&noise, win),
        &fft.generate(&noise, win),
        1e-9,
        "full kernel",
    );
}

#[test]
fn fft_strip_seams_match_direct_whole_surface() {
    // Strips generated tile-by-tile under the FFT backend must agree with
    // one Direct whole-window generation — seams included.
    let s = Gaussian::new(SurfaceParams::isotropic(1.0, 7.0));
    let k = ConvolutionKernel::build(&s, KernelSizing::default()).truncated(1e-3);
    let seed = 2718;
    let mut sg = StripGenerator::from_generator(
        ConvolutionGenerator::from_kernel(k.clone()).with_backend(ConvBackend::FftOverlapSave),
        40,
        seed,
    );
    let a = sg.next_strip(24);
    let b = sg.next_strip(24);
    let whole = ConvolutionGenerator::from_kernel(k)
        .generate(&NoiseField::new(seed), Window::sized(48, 40));
    let scale = whole.as_slice().iter().map(|v| v.abs()).fold(0.0, f64::max);
    for iy in 0..40 {
        for ix in 0..24 {
            let ea = (*whole.get(ix, iy) - *a.get(ix, iy)).abs();
            let eb = (*whole.get(ix + 24, iy) - *b.get(ix, iy)).abs();
            assert!(ea <= 1e-9 * scale, "strip A ({ix},{iy}): {ea}");
            assert!(eb <= 1e-9 * scale, "strip B ({ix},{iy}): {eb}");
        }
    }
}

#[test]
fn auto_dispatches_by_kernel_area_and_counts() {
    use rrs::obs::stage;
    // Large kernel: Auto must resolve to the FFT engine and tick its
    // dispatch counter.
    let s = Gaussian::new(SurfaceParams::isotropic(1.0, 16.0));
    let rec = Recorder::enabled();
    let gen = ConvolutionGenerator::new(&s, KernelSizing::default())
        .with_backend(ConvBackend::Auto)
        .with_recorder(rec.clone());
    assert_eq!(gen.resolved_backend(), ConvBackend::FftOverlapSave);
    gen.generate(&NoiseField::new(1), Window::sized(48, 48));
    let report = rec.report();
    assert_eq!(report.counter(stage::CONV_BACKEND_FFT), 1);
    assert_eq!(report.counter(stage::CONV_BACKEND_DIRECT), 0);
    assert!(report.counter(stage::CONV_FFT_TILES) >= 1);
    assert_eq!(report.counter(stage::CORRELATE_SAMPLES), 48 * 48);

    // Tiny kernel: Auto stays on the direct path.
    let tiny = ConvolutionKernel::build(&s, KernelSizing::default()).crop(3, 3);
    let rec2 = Recorder::enabled();
    let gen2 = ConvolutionGenerator::from_kernel(tiny)
        .with_backend(ConvBackend::Auto)
        .with_recorder(rec2.clone());
    assert_eq!(gen2.resolved_backend(), ConvBackend::Direct);
    gen2.generate(&NoiseField::new(1), Window::sized(16, 16));
    assert_eq!(rec2.report().counter(stage::CONV_BACKEND_DIRECT), 1);
    assert_eq!(rec2.report().counter(stage::CONV_BACKEND_FFT), 0);
}

#[test]
fn correlate_window_api_matches_generate() {
    // The public prefetched-window entry point (what benches time) must
    // agree with the end-to-end path on both backends.
    let s = Gaussian::new(SurfaceParams::isotropic(1.0, 8.0));
    let k = ConvolutionKernel::build(&s, KernelSizing::default()).truncated(1e-3);
    let noise = NoiseField::new(77);
    let win = Window::new(5, -3, 36, 28);
    for backend in [ConvBackend::Direct, ConvBackend::FftOverlapSave] {
        let gen = ConvolutionGenerator::from_kernel(k.clone()).with_backend(backend);
        let (kw, kh) = gen.kernel().extent();
        let (ox, oy) = gen.kernel().origin();
        let prefetched = noise.window(
            win.x0 - (ox + kw as i64 - 1),
            win.y0 - (oy + kh as i64 - 1),
            win.nx + kw - 1,
            win.ny + kh - 1,
        );
        let via_window = gen.try_correlate_window(&prefetched, win.nx, win.ny).unwrap();
        assert_eq!(via_window, gen.generate(&noise, win), "backend {backend:?}");
    }
    // Geometry is validated, not trusted.
    let gen = ConvolutionGenerator::from_kernel(k);
    let err = gen.try_correlate_window(&[0.0; 10], 36, 28).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::ShapeMismatch);
    let err = gen.try_correlate_window(&[], 0, 4).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::InvalidParam);
}

// --- Real-input engine: ≡ complex-serial ≡ Direct, across worker counts. ---

#[test]
fn real_fft_matches_complex_serial_and_direct_across_worker_counts() {
    // Three engines, one sum: the parallel real-input pipeline
    // (FftOverlapSave), the preserved complex serial engine
    // (FftComplexSerial), and the Direct reference must agree within
    // 1e-9 for every worker count — including whatever the host actually
    // has — on an anisotropic truncated kernel with an offset window.
    let s = Gaussian::new(SurfaceParams::new(1.1, 9.0, 4.0));
    let k = ConvolutionKernel::build(&s, KernelSizing::default()).truncated(1e-4);
    let noise = NoiseField::new(271828);
    let win = Window::new(-13, 7, 96, 60);
    let direct = ConvolutionGenerator::from_kernel(k.clone())
        .with_backend(ConvBackend::Direct)
        .generate(&noise, win);
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    for workers in [1, 2, host] {
        let rfft = ConvolutionGenerator::from_kernel(k.clone())
            .with_workers(workers)
            .with_backend(ConvBackend::FftOverlapSave)
            .generate(&noise, win);
        let serial = ConvolutionGenerator::from_kernel(k.clone())
            .with_workers(workers)
            .with_backend(ConvBackend::FftComplexSerial)
            .generate(&noise, win);
        assert_close(&direct, &rfft, 1e-9, &format!("rfft vs direct, workers={workers}"));
        assert_close(&direct, &serial, 1e-9, &format!("complex vs direct, workers={workers}"));
    }
}

#[test]
fn real_fft_is_bit_identical_across_worker_counts() {
    // The parallel branch changes who computes each tile, never the
    // arithmetic inside it: outputs are equal to the bit, not just 1e-9.
    let s = Exponential::new(SurfaceParams::new(0.9, 5.0, 8.0));
    let k = ConvolutionKernel::build(&s, KernelSizing::default()).truncated(1e-3);
    let noise = NoiseField::new(1618);
    let win = Window::new(3, -9, 180, 120);
    let reference = ConvolutionGenerator::from_kernel(k.clone())
        .with_workers(1)
        .with_backend(ConvBackend::FftOverlapSave)
        .generate(&noise, win);
    for workers in [2, 3, 7] {
        let g = ConvolutionGenerator::from_kernel(k.clone())
            .with_workers(workers)
            .with_backend(ConvBackend::FftOverlapSave)
            .generate(&noise, win);
        assert_eq!(hash_grid(&reference), hash_grid(&g), "workers={workers}");
        assert_eq!(reference, g, "workers={workers}");
    }
}

#[test]
fn parallel_real_fft_strips_tile_seamlessly() {
    // Strip-seam contract on the parallel real-input engine specifically:
    // tiles dispatched across workers must reproduce the Direct
    // whole-surface values at every seam.
    let s = Gaussian::new(SurfaceParams::new(1.0, 6.0, 9.0));
    let k = ConvolutionKernel::build(&s, KernelSizing::default()).truncated(1e-3);
    let seed = 31415;
    let mut sg = StripGenerator::from_generator(
        ConvolutionGenerator::from_kernel(k.clone())
            .with_workers(3)
            .with_backend(ConvBackend::FftOverlapSave),
        36,
        seed,
    );
    let a = sg.next_strip(40);
    let b = sg.next_strip(40);
    let whole = ConvolutionGenerator::from_kernel(k)
        .with_backend(ConvBackend::Direct)
        .generate(&NoiseField::new(seed), Window::sized(80, 36));
    let scale = whole.as_slice().iter().map(|v| v.abs()).fold(0.0, f64::max);
    for iy in 0..36 {
        for ix in 0..40 {
            let ea = (*whole.get(ix, iy) - *a.get(ix, iy)).abs();
            let eb = (*whole.get(ix + 40, iy) - *b.get(ix, iy)).abs();
            assert!(ea <= 1e-9 * scale, "strip A ({ix},{iy}): {ea}");
            assert!(eb <= 1e-9 * scale, "strip B ({ix},{iy}): {eb}");
        }
    }
}

#[test]
fn plan_cache_and_parallel_tiles_are_observed() {
    use rrs::obs::stage;
    use rrs_surface::internal::{effective_workers, plan_tiles};
    let s = Gaussian::new(SurfaceParams::isotropic(1.0, 5.0));
    let k = ConvolutionKernel::build(&s, KernelSizing::default()).truncated(1e-3);
    let (kw, kh) = k.extent();
    let win = Window::sized(220, 160);
    // The case must actually tile and actually parallelise, or the
    // counter assertions below test nothing.
    let shape = plan_tiles(win.nx, win.ny, kw, kh);
    let (tx, ty) = shape.tiles(win.nx, win.ny, kw, kh);
    let total_tiles = (tx * ty) as u64;
    assert!(total_tiles > 1, "geometry drifted: {tx}x{ty} tiles");
    assert!(effective_workers(shape, win.nx, win.ny, kw, kh, 4) > 1);

    let rec = Recorder::enabled();
    let gen = ConvolutionGenerator::from_kernel(k)
        .with_workers(4)
        .with_backend(ConvBackend::FftOverlapSave)
        .with_recorder(rec.clone());
    let noise = NoiseField::new(55);
    let first = gen.generate(&noise, win);
    let after_first = rec.report();
    // First request: every plan is a miss (tile transform + kernel
    // spectrum share the same shape, so at least one miss; zero hits
    // would need a pre-warmed cache).
    let misses = after_first.counter(stage::FFT_PLAN_MISS);
    assert!(misses >= 1, "first request must build at least one plan");
    assert_eq!(after_first.counter(stage::CONV_TILES_PARALLEL), total_tiles);
    assert_eq!(after_first.counter(stage::CONV_FFT_TILES), total_tiles);

    // Second identical request: plans come from the cache — misses stay
    // where they were, hits move.
    let second = gen.generate(&noise, win);
    let after_second = rec.report();
    assert_eq!(
        after_second.counter(stage::FFT_PLAN_MISS),
        misses,
        "a repeated shape must not rebuild plans"
    );
    assert!(after_second.counter(stage::FFT_PLAN_HIT) >= 1);
    assert_eq!(first, second, "plan caching must not change output");
}

#[test]
fn shared_plan_cache_is_warm_across_generators() {
    use rrs::obs::stage;
    use rrs_fft::FftPlanCache;
    use std::sync::Arc;
    let s = Gaussian::new(SurfaceParams::isotropic(1.0, 6.0));
    let k = ConvolutionKernel::build(&s, KernelSizing::default()).truncated(1e-3);
    let plans = Arc::new(FftPlanCache::new());
    let noise = NoiseField::new(808);
    let win = Window::sized(64, 48);

    // Warm the cache through a plain generator…
    ConvolutionGenerator::from_kernel(k.clone())
        .with_backend(ConvBackend::FftOverlapSave)
        .with_plan_cache(plans.clone())
        .generate(&noise, win);

    // …then a strip generator sharing the cache and transforming the same
    // tile shape must hit without a single new plan build.
    let rec = Recorder::enabled();
    let mut sg = StripGenerator::from_generator(
        ConvolutionGenerator::from_kernel(k.clone())
            .with_backend(ConvBackend::FftOverlapSave)
            .with_plan_cache(plans)
            .with_recorder(rec.clone()),
        win.ny,
        808,
    );
    let strip = sg.next_strip(win.nx);
    let report = rec.report();
    assert!(report.counter(stage::FFT_PLAN_HIT) >= 1, "shared cache must serve hits");
    assert_eq!(report.counter(stage::FFT_PLAN_MISS), 0, "no plan may be rebuilt");
    // Same surface either way.
    let direct = ConvolutionGenerator::from_kernel(k)
        .with_backend(ConvBackend::Direct)
        .generate(&NoiseField::new(808), Window::sized(win.nx, win.ny));
    assert_close(&direct, &strip, 1e-9, "shared-cache strip");
}

// --- Property suite: FFT ≡ Direct across families / anisotropy / truncation. ---

struct EquivCase {
    family: u8,
    h: f64,
    clx: f64,
    cly: f64,
    truncate: Option<f64>,
    seed: u64,
    x0: i64,
    y0: i64,
    nx: usize,
    ny: usize,
}

fn arb_case() -> impl Gen<Value = EquivCase> {
    from_fn(|rng| EquivCase {
        family: (rng.next_below(3)) as u8,
        h: 0.3 + rng.next_f64() * 2.0,
        clx: 3.0 + rng.next_f64() * 9.0,
        cly: 3.0 + rng.next_f64() * 9.0,
        truncate: if rng.next_below(2) == 0 { Some(10f64.powf(-1.0 - 2.0 * rng.next_f64())) } else { None },
        seed: rng.next_u64(),
        x0: rng.next_below(64) as i64 - 32,
        y0: rng.next_below(64) as i64 - 32,
        nx: 8 + rng.next_below(56) as usize,
        ny: 8 + rng.next_below(56) as usize,
    })
}

rrs_check::props! {
    #![cases = 24]

    /// The overlap-save engine reproduces the direct sum within 1e-9
    /// relative error for random spectrum families, anisotropic
    /// correlation lengths, truncated and full kernels, and arbitrary
    /// window offsets.
    fn fft_backend_matches_direct(case in arb_case(), workers in 1usize..4) {
        let p = SurfaceParams::new(case.h, case.clx, case.cly);
        let s = match case.family {
            0 => SpectrumModel::gaussian(p),
            1 => SpectrumModel::power_law(p, 2.5),
            _ => SpectrumModel::exponential(p),
        };
        let sizing = KernelSizing::Auto { factor: 6.0, min: 16, max: 96 };
        let mut kernel = ConvolutionKernel::build(&s, sizing);
        if let Some(eps) = case.truncate {
            kernel = kernel.truncated(eps);
        }
        let noise = NoiseField::new(case.seed);
        let win = Window::new(case.x0, case.y0, case.nx, case.ny);
        let direct = ConvolutionGenerator::from_kernel(kernel.clone())
            .with_workers(workers)
            .with_backend(ConvBackend::Direct)
            .generate(&noise, win);
        let fft = ConvolutionGenerator::from_kernel(kernel.clone())
            .with_workers(workers)
            .with_backend(ConvBackend::FftOverlapSave)
            .generate(&noise, win);
        let serial = ConvolutionGenerator::from_kernel(kernel)
            .with_workers(workers)
            .with_backend(ConvBackend::FftComplexSerial)
            .generate(&noise, win);
        let scale = direct.as_slice().iter().map(|v| v.abs()).fold(0.0, f64::max).max(1e-30);
        for (i, ((a, b), c)) in direct
            .as_slice()
            .iter()
            .zip(fft.as_slice())
            .zip(serial.as_slice())
            .enumerate()
        {
            for (engine, v) in [("rfft", b), ("complex", c)] {
                let rel = (a - v).abs() / scale;
                assert!(
                    rel <= 1e-9,
                    "{engine}: family {} {}x{} trunc {:?} sample {i}: rel err {rel:e}",
                    case.family, case.nx, case.ny, case.truncate
                );
            }
        }
    }

    /// `Auto` always resolves to one of the two concrete engines, and its
    /// output equals that engine's exactly (dispatch adds no arithmetic).
    fn auto_equals_resolved_backend(case in arb_case()) {
        let p = SurfaceParams::new(case.h, case.clx, case.cly);
        let s = SpectrumModel::gaussian(p);
        let sizing = KernelSizing::Auto { factor: 6.0, min: 16, max: 64 };
        let kernel = ConvolutionKernel::build(&s, sizing);
        let noise = NoiseField::new(case.seed);
        let win = Window::new(case.x0, case.y0, case.nx.min(32), case.ny.min(32));
        let auto_gen = ConvolutionGenerator::from_kernel(kernel.clone())
            .with_backend(ConvBackend::Auto);
        let resolved = auto_gen.resolved_backend();
        assert!(matches!(resolved, ConvBackend::Direct | ConvBackend::FftOverlapSave));
        let concrete = ConvolutionGenerator::from_kernel(kernel).with_backend(resolved);
        assert_eq!(
            auto_gen.generate(&noise, win),
            concrete.generate(&noise, win),
            "Auto must be a pure dispatch"
        );
    }
}
