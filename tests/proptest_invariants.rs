//! Property-based integration tests over the public API (rrs-check).
//!
//! Each property quantifies an invariant the reproduction rests on:
//! transform identities, kernel energy conservation, tiling exactness,
//! and estimator sanity — exercised over randomly drawn shapes, seeds and
//! parameters rather than hand-picked cases.

use rrs::fft::{Direction, Fft};
use rrs::num::Complex64;
use rrs::prelude::*;
use rrs::rng::{RandomSource, Xoshiro256pp};
use rrs_check::{any, from_fn, Gen};

fn arb_signal(max_len: usize) -> impl Gen<Value = Vec<Complex64>> {
    from_fn(move |rng| {
        let n = 1 + (rng.next_below((max_len - 1) as u64) as usize);
        let mut src = Xoshiro256pp::seed_from_u64(rng.next_u64());
        (0..n)
            .map(|_| Complex64::new(src.next_f64() - 0.5, src.next_f64() - 0.5))
            .collect()
    })
}

rrs_check::props! {
    #![cases = 48]

    /// FFT round-trip identity for arbitrary lengths (radix-2 and
    /// Bluestein paths alike).
    fn fft_round_trip(signal in arb_signal(200)) {
        let n = signal.len();
        let fft = Fft::new(n);
        let mut buf = signal.clone();
        fft.process(&mut buf, Direction::Forward);
        fft.process(&mut buf, Direction::Inverse);
        for (a, b) in buf.iter().zip(&signal) {
            assert!((*a - *b).abs() < 1e-9, "length {n}");
        }
    }

    /// Parseval's identity for arbitrary lengths.
    fn fft_parseval(signal in arb_signal(160)) {
        let n = signal.len();
        let mut buf = signal.clone();
        Fft::new(n).process(&mut buf, Direction::Forward);
        let t: f64 = signal.iter().map(|z| z.norm_sqr()).sum();
        let f: f64 = buf.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((t - f).abs() <= 1e-9 * t.max(1.0));
    }

    /// Kernel energy equals the surface variance for random parameters
    /// and spectra (the normalisation chain w → v → w̃ is exact).
    fn kernel_energy_equals_variance(
        h in 0.1f64..4.0,
        cl in 3.0f64..12.0,
        family in 0u8..3,
    ) {
        let p = SurfaceParams::isotropic(h, cl);
        let s = match family {
            0 => SpectrumModel::gaussian(p),
            1 => SpectrumModel::power_law(p, 2.5),
            _ => SpectrumModel::exponential(p),
        };
        let k = ConvolutionKernel::build(
            &s,
            KernelSizing::Auto { factor: 10.0, min: 32, max: 256 },
        );
        let rel = (k.energy() - h * h).abs() / (h * h);
        // The exponential family's K^-3 spectral tail loses the analytic
        // fraction ≈ 1/(π·cl) to Nyquist truncation; the other families
        // decay fast enough to be near-exact.
        let bound = match family {
            2 => 0.02 + 1.5 / (core::f64::consts::PI * cl),
            _ => 0.03,
        };
        assert!(rel < bound, "family {family}: energy {}, h² {}", k.energy(), h * h);
    }

    /// Window tiling of the homogeneous generator is exact for random
    /// window geometry and seeds.
    fn window_tiling_is_exact(
        seed in any::<u64>(),
        x0 in -50i64..50,
        y0 in -50i64..50,
        w in 4usize..40,
        h in 4usize..40,
        sx in 1usize..20,
        sy in 1usize..20,
    ) {
        let s = Gaussian::new(SurfaceParams::isotropic(1.0, 4.0));
        let gen = ConvolutionGenerator::new(
            &s,
            KernelSizing::Auto { factor: 6.0, min: 16, max: 64 },
        )
        .with_workers(1);
        let noise = NoiseField::new(seed);
        let sx = sx.min(w - 1);
        let sy = sy.min(h - 1);
        let big = gen.generate(&noise, Window::new(x0, y0, w, h));
        let sub = gen.generate(
            &noise,
            Window::new(x0 + sx as i64, y0 + sy as i64, w - sx, h - sy),
        );
        for iy in 0..h - sy {
            for ix in 0..w - sx {
                assert_eq!(*sub.get(ix, iy), *big.get(ix + sx, iy + sy));
            }
        }
    }

    /// Plate-layout weights are a partition of unity everywhere, for
    /// random rectangle geometry.
    fn plate_weights_partition_unity(
        cx in 10.0f64..90.0,
        cy in 10.0f64..90.0,
        r in 5.0f64..40.0,
        t in 1.0f64..30.0,
        px in -20.0f64..120.0,
        py in -20.0f64..120.0,
    ) {
        let layout = PlateLayout::new(
            vec![Plate {
                region: Region::Circle { cx, cy, r },
                spectrum: SpectrumModel::gaussian(SurfaceParams::isotropic(1.0, 4.0)),
            }],
            Some(SpectrumModel::gaussian(SurfaceParams::isotropic(2.0, 6.0))),
            t,
        );
        let mut w = Vec::new();
        use rrs::inhomo::WeightMap;
        layout.weights_at(px, py, &mut w);
        let total: f64 = w.iter().map(|&(_, v)| v).sum();
        assert!((total - 1.0).abs() < 1e-9, "weights sum to {total}");
        assert!(w.iter().all(|&(_, v)| v >= 0.0));
    }

    /// Point-layout weights are a partition of unity with the nearest
    /// point dominating, for random point sets.
    fn point_weights_partition_unity(
        seed in any::<u64>(),
        n_points in 2usize..8,
        t in 1.0f64..40.0,
        px in -100.0f64..200.0,
        py in -100.0f64..200.0,
    ) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut pts = Vec::new();
        for i in 0..n_points {
            pts.push(RepresentativePoint {
                // Spread points on a coarse jittered lattice so no two collide.
                x: (i % 4) as f64 * 60.0 + rng.next_f64() * 20.0,
                y: (i / 4) as f64 * 60.0 + rng.next_f64() * 20.0,
                spectrum: SpectrumModel::gaussian(SurfaceParams::isotropic(1.0, 4.0)),
            });
        }
        let layout = PointLayout::new(pts, t);
        use rrs::inhomo::WeightMap;
        let mut w = Vec::new();
        layout.weights_at(px, py, &mut w);
        let total: f64 = w.iter().map(|&(_, v)| v).sum();
        assert!((total - 1.0).abs() < 1e-9);
        let nearest = layout.nearest(px, py);
        let wn = w.iter().find(|&&(k, _)| k == nearest).map_or(0.0, |&(_, v)| v);
        assert!(wn >= 0.5 - 1e-9, "nearest weight {wn}");
    }

    /// Snapshot serialisation round-trips arbitrary grids bit-exactly.
    fn snapshot_round_trip(
        nx in 1usize..24,
        ny in 1usize..24,
        seed in any::<u64>(),
    ) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let g = rrs::grid::Grid2::from_fn(nx, ny, |_, _| rng.next_f64() * 2e3 - 1e3);
        let mut buf = Vec::new();
        rrs::io::write_snapshot(&mut buf, &g).unwrap();
        let back = rrs::io::read_snapshot(buf.as_slice()).unwrap();
        assert_eq!(back, g);
    }

    /// The correlation-length estimator inverts known profiles for random
    /// true lengths and spacings.
    fn correlation_length_estimator_inverts(
        cl in 2.0f64..30.0,
        spacing in 0.25f64..4.0,
        gaussian in any::<bool>(),
    ) {
        let profile: Vec<f64> = (0..200)
            .map(|d| {
                let u = d as f64 * spacing / cl;
                if gaussian { (-u * u).exp() } else { (-u).exp() }
            })
            .collect();
        if let Some(est) = rrs::stats::estimate_correlation_length(&profile, spacing) {
            assert!((est - cl).abs() < 0.1 * cl + spacing, "est {est} vs {cl}");
        } else {
            // Only acceptable when the crossing lies outside the profile.
            assert!(cl / spacing > 190.0, "estimator gave up too early");
        }
    }
}
