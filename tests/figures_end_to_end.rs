//! End-to-end reproduction of the paper's Figures 1–4 at test scale.
//!
//! These are the integration-level assertions behind EXPERIMENTS.md: the
//! qualitative *shape* of every figure — which regions are rougher, by
//! roughly what factor, where the transitions sit — must hold at any
//! scale. (The `reproduce` binary runs the same definitions at larger
//! scale and records the quantitative tables.)

use rrs_bench::figures::{all_figures, fig1, fig3, fig4};

const SCALE: f64 = 0.125;
const EPS: f64 = 0.05;

#[test]
fn all_figures_generate_and_regions_validate() {
    for fig in all_figures(SCALE, EPS, 11) {
        let reports = fig.validate_ensemble(4);
        for (name, r) in &reports {
            // Height std-dev within 50% per small-scale region (the shape
            // check; tight quantitative checks run at larger scale).
            assert!(
                r.h_rel_error() < 0.5,
                "{} / {name}: h_hat = {:.3}, target {:.3}",
                fig.id,
                r.h_measured,
                r.target.h
            );
            // Gaussian marginals everywhere. Windows at this scale hold
            // only ~4-20 correlation patches, so the 3rd/4th-moment
            // estimators swing hard: these are gross-failure guards,
            // the precise normality tests run on large windows in
            // tests/inhomogeneous_pipeline.rs.
            assert!(r.skewness.abs() < 1.2, "{} / {name}: skew {}", fig.id, r.skewness);
            assert!(
                (r.kurtosis - 3.0).abs() < 2.0,
                "{} / {name}: kurtosis {}",
                fig.id,
                r.kurtosis
            );
        }
    }
}

#[test]
fn fig1_quadrant_roughness_ordering() {
    let fig = fig1(SCALE, EPS, 5);
    let reports = fig.validate_ensemble(6);
    let h: Vec<f64> = reports.iter().map(|(_, r)| r.h_measured).collect();
    // q3 (h=2.0) > {q2, q4} (1.5) > q1 (1.0).
    assert!(h[2] > h[1] && h[2] > h[3], "q3 must be roughest: {h:?}");
    assert!(h[1] > h[0] && h[3] > h[0], "q1 must be smoothest: {h:?}");
    // q2 and q4 share parameters.
    assert!((h[1] - h[3]).abs() < 0.35, "q2 vs q4: {h:?}");
}

#[test]
fn fig3_pond_to_field_contrast() {
    let fig = fig3(SCALE, EPS, 9);
    let reports = fig.validate_ensemble(6);
    let pond = reports[0].1.h_measured;
    let field = reports[1].1.h_measured;
    // Paper contrast: h = 0.2 inside vs 1.0 outside — a 5x factor.
    let factor = field / pond;
    assert!(
        (3.0..8.0).contains(&factor),
        "field/pond roughness factor {factor} (expected ≈ 5)"
    );
}

#[test]
fn fig4_ring_groups_grade_outward() {
    let fig = fig4(SCALE, EPS, 13);
    let reports = fig.validate_ensemble(6);
    // reports: centre, i=2 (h=1.0), i=5 (h=1.5), i=8 (h=2.0).
    let h: Vec<f64> = reports.iter().map(|(_, r)| r.h_measured).collect();
    assert!(h[3] > h[2] && h[2] > h[1], "ring groups must grade upward: {h:?}");
    assert!(h[0] < h[2], "the exponential centre (h=0.5) must be smoother: {h:?}");
}

#[test]
fn figures_are_seed_reproducible() {
    let a = fig3(SCALE, EPS, 3).generate();
    let b = fig3(SCALE, EPS, 3).generate();
    assert_eq!(a, b, "same seed must reproduce the identical figure");
    let c = fig3(SCALE, EPS, 4).generate();
    assert_ne!(a, c, "different seeds must differ");
}
