//! Cross-crate integration: generated surfaces survive the I/O layer.

use rrs::prelude::*;

fn surface() -> rrs::grid::Grid2<f64> {
    let s = Gaussian::new(SurfaceParams::isotropic(1.0, 6.0));
    ConvolutionGenerator::new(&s, KernelSizing::default())
        .with_workers(1)
        .generate(&NoiseField::new(3), Window::new(0, 0, 96, 64))
}

#[test]
fn snapshot_round_trip_preserves_statistics_exactly() {
    let f = surface();
    let mut buf = Vec::new();
    rrs::io::write_snapshot(&mut buf, &f).unwrap();
    let back = rrs::io::read_snapshot(buf.as_slice()).unwrap();
    assert_eq!(back, f, "snapshots are bit-exact");
    assert_eq!(back.std_dev(), f.std_dev());
}

#[test]
fn csv_round_trip_preserves_statistics_exactly() {
    let f = surface();
    let mut buf = Vec::new();
    rrs::io::write_matrix_csv(&mut buf, &f).unwrap();
    let back = rrs::io::read_matrix_csv(buf.as_slice()).unwrap();
    assert_eq!(back, f, "debug-formatted floats round-trip exactly");
}

#[test]
fn renders_have_correct_sizes() {
    let f = surface();
    let mut pgm = Vec::new();
    rrs::io::write_pgm(&mut pgm, &f).unwrap();
    assert!(pgm.len() > 96 * 64, "one byte per sample plus header");
    let mut ppm = Vec::new();
    rrs::io::write_ppm(&mut ppm, &f).unwrap();
    assert!(ppm.len() > 3 * 96 * 64);
    let mut dat = Vec::new();
    rrs::io::write_gnuplot_matrix(&mut dat, &f, "integration test").unwrap();
    let text = String::from_utf8(dat).unwrap();
    assert_eq!(text.lines().filter(|l| !l.starts_with('#')).count(), 64);
}

#[test]
fn validation_works_on_reloaded_surface() {
    let s = Gaussian::new(SurfaceParams::isotropic(1.0, 6.0));
    let f = surface();
    let mut buf = Vec::new();
    rrs::io::write_snapshot(&mut buf, &f).unwrap();
    let back = rrs::io::read_snapshot(buf.as_slice()).unwrap();
    let r = validate_region(&back, &s, 0, 0, 96, 64);
    assert!(r.h_rel_error() < 0.35, "reloaded surface h_hat {}", r.h_measured);
}
