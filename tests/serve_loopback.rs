//! Loopback contract tests for the serving front-end: a real server on
//! 127.0.0.1, a real TCP client, and the library called directly as the
//! reference.
//!
//! The headline promise is *transparency*: a served window is
//! bit-identical to calling the generator in-process with the same
//! spectrum, sizing, truncation, seed and window — for every backend.
//! Around it sit the scheduler's contracts: typed overload rejections
//! before any queueing, per-tenant quotas, per-request budgets, batch
//! coalescing over the shared plan cache, and a metrics endpoint.

use rrs::obs::stage;
use rrs::prelude::*;
use rrs::serve::{serve, OverloadReason};

fn spectrum() -> SpectrumModel {
    SpectrumModel::gaussian(SurfaceParams::isotropic(1.2, 5.0))
}

/// The direct in-process reference for a served request.
fn direct(
    model: &SpectrumModel,
    truncation: Option<f64>,
    sizing: KernelSizing,
    backend: ConvBackend,
    seed: u64,
    win: Window,
) -> Grid2<f64> {
    let mut kernel = ConvolutionKernel::build(model, sizing);
    if let Some(eps) = truncation {
        kernel = kernel.try_truncated(eps).expect("valid epsilon");
    }
    ConvolutionGenerator::from_kernel(kernel)
        .with_backend(backend)
        .generate(&NoiseField::new(seed), win)
}

#[test]
fn served_windows_are_bit_identical_to_direct_generation_across_backends() {
    let server = serve(ServeConfig::default()).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");
    let model = spectrum();
    let win = Window::new(-5, 3, 40, 32);
    for (i, backend) in [
        ConvBackend::Direct,
        ConvBackend::FftOverlapSave,
        ConvBackend::FftComplexSerial,
        ConvBackend::Auto,
    ]
    .into_iter()
    .enumerate()
    {
        let req = GenerateRequest::new(i as u64 + 1, 0, 0xBEE5 + i as u64, model, win)
            .with_truncation(1e-3)
            .with_sizing(6.0, 8, 64)
            .with_backend(backend);
        let served = client.try_generate(&req).expect("served window");
        let reference = direct(
            &model,
            Some(1e-3),
            KernelSizing::Auto { factor: 6.0, min: 8, max: 64 },
            backend,
            0xBEE5 + i as u64,
            win,
        );
        assert_eq!(served, reference, "served != direct for {backend:?}");
    }
    server.shutdown();
}

#[test]
fn coalesced_batches_share_one_kernel_and_the_plan_cache() {
    // One worker: while it grinds the slow Direct-backend job, the
    // pipelined same-key FFT jobs pile up and drain as one batch.
    let config = ServeConfig { workers: 1, max_batch: 16, ..ServeConfig::default() };
    let server = serve(config).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");
    let model = spectrum();
    let win = Window::sized(48, 48);

    // Warm the kernel cache for the batch key so the batch itself is
    // pure generation (and pure plan-cache hits after the first).
    let warm = GenerateRequest::new(1, 0, 1, model, win)
        .with_truncation(1e-3)
        .with_sizing(6.0, 8, 64)
        .with_backend(ConvBackend::FftOverlapSave);
    let warm_grid = client.try_generate(&warm).expect("warm-up");

    // The slow blocker: a big window on the Direct backend, different
    // key, so the worker is busy while the batch queues behind it.
    let slow = GenerateRequest::new(2, 0, 2, spectrum(), Window::sized(192, 192))
        .with_sizing(12.0, 96, 128)
        .with_backend(ConvBackend::Direct);
    client.send(&slow).expect("send slow");

    let batch: Vec<GenerateRequest> = (0..8)
        .map(|i| {
            let mut r = warm;
            r.request_id = 10 + i;
            r.seed = 100 + i;
            r
        })
        .collect();
    for r in &batch {
        client.send(r).expect("send batch member");
    }
    for _ in 0..9 {
        let (_, outcome) = client.recv().expect("response");
        outcome.expect("all jobs succeed");
    }
    // Same seed as the warm-up ⇒ same bits, through the cached kernel.
    let again = {
        let mut r = warm;
        r.request_id = 99;
        client.try_generate(&r).expect("re-served")
    };
    assert_eq!(again, warm_grid, "cached kernel changed the output");

    let report = server.report();
    assert!(
        report.counter(stage::SERVE_COALESCED) >= 1,
        "expected at least one coalesced job, report: {}",
        report.to_json("")
    );
    // 11 requests, but only two distinct keys ⇒ exactly two kernel
    // builds; every other lookup (one per batch, not per request) hits.
    assert_eq!(
        report.counter(stage::SERVE_KERNEL_MISS),
        2,
        "same-key requests must reuse the cached kernel: {}",
        report.to_json("")
    );
    assert!(
        report.counter(stage::SERVE_KERNEL_HIT) >= 1,
        "batch must hit the kernel cache: {}",
        report.to_json("")
    );
    assert!(
        report.counter(stage::FFT_PLAN_HIT) > report.counter(stage::FFT_PLAN_MISS),
        "a warm batch must hit the shared plan cache more than it misses: hits {} misses {}",
        report.counter(stage::FFT_PLAN_HIT),
        report.counter(stage::FFT_PLAN_MISS)
    );
    server.shutdown();
}

#[test]
fn full_queue_rejects_with_a_typed_overload_before_queueing() {
    // Capacity 0: admission control must reject every request up front.
    let config = ServeConfig { queue_capacity: 0, ..ServeConfig::default() };
    let server = serve(config).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");
    let req = GenerateRequest::new(1, 0, 7, spectrum(), Window::sized(16, 16));
    match client.try_generate(&req) {
        Err(ServeError::Overloaded { reason: OverloadReason::QueueFull, .. }) => {}
        other => panic!("expected QueueFull overload, got {other:?}"),
    }
    assert!(server.report().counter(stage::SERVE_OVERLOADED) >= 1);
    server.shutdown();
}

#[test]
fn tenant_in_flight_quota_rejects_the_second_request() {
    let config = ServeConfig {
        workers: 1,
        tenant_quotas: vec![(5, TenantQuota { max_in_flight: 1, ..TenantQuota::default() })],
        ..ServeConfig::default()
    };
    let server = serve(config).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");
    // Occupy tenant 5's single slot with a slow Direct-backend job...
    let slow = GenerateRequest::new(1, 5, 1, spectrum(), Window::sized(192, 192))
        .with_sizing(12.0, 96, 128)
        .with_backend(ConvBackend::Direct);
    client.send(&slow).expect("send slow");
    // ...then hit the cap with a second request for the same tenant.
    let second = GenerateRequest::new(2, 5, 2, spectrum(), Window::sized(16, 16));
    client.send(&second).expect("send second");
    let mut saw_quota_rejection = false;
    for _ in 0..2 {
        let (id, outcome) = client.recv().expect("response");
        match outcome {
            Err(ServeError::Overloaded { reason: OverloadReason::TenantQuota, .. }) => {
                assert_eq!(id, 2, "the second request is the rejected one");
                saw_quota_rejection = true;
            }
            Ok(_) => assert_eq!(id, 1, "only the slow job may succeed"),
            Err(e) => panic!("unexpected failure for request {id}: {e}"),
        }
    }
    assert!(saw_quota_rejection, "tenant quota never triggered");
    // Another tenant is unaffected.
    let other = GenerateRequest::new(3, 6, 3, spectrum(), Window::sized(16, 16));
    client.try_generate(&other).expect("other tenants keep flowing");
    server.shutdown();
}

#[test]
fn byte_quota_rejects_typed_before_any_allocation() {
    let config = ServeConfig {
        tenant_quotas: vec![(
            9,
            TenantQuota { max_request_bytes: 1024, ..TenantQuota::default() },
        )],
        ..ServeConfig::default()
    };
    let server = serve(config).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");
    // 64×64×8 = 32768 bytes > the 1024-byte ceiling.
    let req = GenerateRequest::new(1, 9, 7, spectrum(), Window::sized(64, 64));
    match client.try_generate(&req) {
        Err(ServeError::Remote(e)) => {
            assert_eq!(e.kind, ErrorKind::BudgetExceeded);
            assert_eq!(e.required_bytes, 64 * 64 * 8);
            assert_eq!(e.max_bytes, 1024);
        }
        other => panic!("expected a typed BudgetExceeded, got {other:?}"),
    }
    // Nothing was queued or generated for it.
    assert_eq!(server.report().counter(stage::SERVE_GENERATE), 0);
    server.shutdown();
}

#[test]
fn per_request_budgets_ride_the_wire() {
    let server = serve(ServeConfig::default()).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");
    let model = spectrum();
    let win = Window::sized(32, 32);

    // A byte ceiling below the request's own footprint trips the
    // generator's admission control (not the tenant quota).
    let starved = GenerateRequest::new(1, 0, 5, model, win).with_max_bytes(64);
    match client.try_generate(&starved) {
        Err(ServeError::Remote(e)) => assert_eq!(e.kind, ErrorKind::BudgetExceeded),
        other => panic!("expected BudgetExceeded, got {other:?}"),
    }

    // A generous armed deadline changes nothing: still bit-identical to
    // the direct call (armed-idle budgets are inert).
    let deadlined = GenerateRequest::new(2, 0, 5, model, win)
        .with_truncation(1e-3)
        .with_sizing(6.0, 8, 64)
        .with_deadline_ms(60_000);
    let served = client.try_generate(&deadlined).expect("within deadline");
    let reference = direct(
        &model,
        Some(1e-3),
        KernelSizing::Auto { factor: 6.0, min: 8, max: 64 },
        ConvBackend::Direct,
        5,
        win,
    );
    assert_eq!(served, reference, "an armed-idle deadline changed the bits");
    server.shutdown();
}

#[test]
fn malformed_and_bit_flipped_frames_get_typed_errors_over_tcp() {
    use rrs::serve::wire::{read_frame, write_frame, FrameKind};
    use std::io::Write;

    let server = serve(ServeConfig::default()).expect("bind");

    // Garbage that never was a frame: the server answers with a typed
    // CorruptSnapshot error and hangs up.
    let mut raw = std::net::TcpStream::connect(server.addr()).expect("connect");
    raw.write_all(b"XXXXXXXXXXXXXXXXXXXXXXXX").expect("write garbage");
    raw.flush().expect("flush");
    let (kind, payload) = read_frame(&mut raw.try_clone().expect("clone"))
        .expect("server reply")
        .expect("typed reply before hang-up");
    assert_eq!(kind, FrameKind::GenerateErr);
    let err = rrs::serve::GenerateErr::decode(&payload).expect("decodable");
    assert_eq!(err.kind, ErrorKind::CorruptSnapshot);

    // A real frame with one flipped payload bit: checksum catches it,
    // same typed rejection.
    let req = GenerateRequest::new(1, 0, 7, spectrum(), Window::sized(16, 16));
    let mut buf = Vec::new();
    write_frame(&mut buf, FrameKind::Generate, &req.encode()).expect("encode");
    buf[20] ^= 0x04;
    let mut raw = std::net::TcpStream::connect(server.addr()).expect("connect");
    raw.write_all(&buf).expect("write flipped frame");
    raw.flush().expect("flush");
    let (kind, payload) = read_frame(&mut raw.try_clone().expect("clone"))
        .expect("server reply")
        .expect("typed reply before hang-up");
    assert_eq!(kind, FrameKind::GenerateErr);
    let err = rrs::serve::GenerateErr::decode(&payload).expect("decodable");
    assert_eq!(err.kind, ErrorKind::CorruptSnapshot);
    server.shutdown();
}

#[test]
fn metrics_endpoint_serves_the_obs_report() {
    let server = serve(ServeConfig::default()).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");
    client.ping().expect("ping");
    let req = GenerateRequest::new(1, 0, 7, spectrum(), Window::sized(16, 16));
    client.try_generate(&req).expect("served");
    let json = client.metrics().expect("metrics");
    assert!(json.starts_with('{') && json.ends_with('}'), "not a JSON object: {json}");
    for needle in ["\"serve/requests\"", "\"serve/generate\"", "\"counters\"", "\"durations\""] {
        assert!(json.contains(needle), "metrics JSON missing {needle}: {json}");
    }
    // The handle-side report agrees.
    assert!(server.report().counter(stage::SERVE_REQUESTS) >= 1);
    server.shutdown();
}
