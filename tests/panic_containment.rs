//! Panic containment across the parallel layer, exercised from the
//! facade: a worker that panics mid-band must surface as a typed
//! `RrsError::WorkerPanicked` naming the band — never abort the process
//! or poison the other bands — and the serial fallback must reproduce
//! the parallel result bit-for-bit (the static partition is identical).

use rrs::error::{ErrorKind, RrsError};
use rrs::par::{par_row_chunks_mut_with_fallback, try_par_row_chunks_mut};
use std::sync::atomic::{AtomicUsize, Ordering};

const NX: usize = 16;
const NY: usize = 12;

fn fill(row0: usize, rows: &mut [f64]) {
    for (i, v) in rows.iter_mut().enumerate() {
        let (ix, iy) = (i % NX, row0 + i / NX);
        *v = (ix as f64).mul_add(1.25, iy as f64 * -0.5);
    }
}

#[test]
fn panicking_worker_surfaces_as_typed_error_naming_the_band() {
    let mut data = vec![0.0f64; NX * NY];
    let err = try_par_row_chunks_mut(&mut data, NX, 3, |row0, _rows| {
        if row0 >= NY / 2 {
            panic!("injected fault in band starting at row {row0}");
        }
    })
    .expect_err("a panicking worker must produce an error");

    assert_eq!(err.kind(), ErrorKind::WorkerPanicked, "{err}");
    match &err {
        RrsError::WorkerPanicked { payload, .. } => {
            assert!(payload.contains("injected fault"), "payload: {payload}");
        }
        other => panic!("unexpected variant: {other}"),
    }
    let msg = err.to_string();
    assert!(msg.contains("band"), "message must name the band: {msg}");
}

#[test]
fn serial_fallback_after_transient_panic_is_bit_exact() {
    // Parallel reference with no faults.
    let mut want = vec![0.0f64; NX * NY];
    try_par_row_chunks_mut(&mut want, NX, 4, |row0, rows| fill(row0, rows)).unwrap();

    // Same computation, but the first parallel attempt hits a transient
    // panic in one band; the fallback reruns the identical partition
    // serially and must produce the same bits.
    let attempts = AtomicUsize::new(0);
    let mut got = vec![0.0f64; NX * NY];
    par_row_chunks_mut_with_fallback(&mut got, NX, 4, |row0, rows| {
        if attempts.fetch_add(1, Ordering::SeqCst) == 1 {
            panic!("transient fault");
        }
        fill(row0, rows);
    })
    .expect("fallback must recover from a transient panic");

    assert_eq!(got, want, "serial fallback diverged from the parallel result");
}
