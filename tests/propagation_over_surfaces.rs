//! Cross-crate integration: propagation over *generated* terrain — the
//! full pipeline the paper's introduction motivates (surface statistics →
//! terrain → radio links).

use rrs::grid::extract_profile;
use rrs::prelude::*;
use rrs::propagation::{deygout_loss_db, epstein_peterson_loss_db, link_budget_sweep};

fn terrain(h: f64, cl: f64, seed: u64, n: usize) -> rrs::grid::Grid2<f64> {
    let s = Gaussian::new(SurfaceParams::isotropic(h, cl));
    ConvolutionGenerator::new(&s, KernelSizing::default())
        .with_workers(2)
        .generate(&NoiseField::new(seed), Window::new(0, 0, n, n))
}

/// Ensemble-averaged diffraction loss grows with surface roughness at
/// fixed correlation length.
#[test]
fn rougher_terrain_attenuates_more_on_average() {
    let n = 384usize;
    let lambda = 0.125; // 2.4 GHz
    let mean_loss = |h: f64| -> f64 {
        let mut total = 0.0;
        let mut count = 0.0;
        for seed in 0..6u64 {
            let t = terrain(h, 8.0, seed, n);
            for row in [64usize, 192, 320] {
                let p = rrs::grid::extract_row(&t, row);
                total += deygout_loss_db(&p, 2.0, 2.0, lambda);
                count += 1.0;
            }
        }
        total / count
    };
    let smooth = mean_loss(0.5);
    let rough = mean_loss(3.0);
    assert!(
        rough > smooth + 3.0,
        "rough terrain {rough} dB vs smooth {smooth} dB"
    );
}

/// Diffraction loss grows with path length over the same rough terrain.
#[test]
fn loss_grows_along_the_path() {
    let t = terrain(2.0, 8.0, 3, 512);
    let p = rrs::grid::extract_row(&t, 256);
    let sweep = link_budget_sweep(&p, 2.0, 2.0, 2.4e9, 64, 64);
    assert!(sweep.len() >= 6);
    // Total loss (free space + diffraction) must trend upward; allow
    // local wiggles from individual crests.
    let first = sweep.first().unwrap().total_db();
    let last = sweep.last().unwrap().total_db();
    assert!(last > first + 6.0, "loss {first} → {last} dB");
    for s in &sweep {
        assert!(s.diffraction_db >= 0.0 && s.diffraction_db.is_finite());
    }
}

/// The two multi-edge constructions agree on order of magnitude over
/// generated terrain (they are different approximations of the same
/// physics).
#[test]
fn deygout_and_epstein_peterson_are_consistent() {
    let t = terrain(2.0, 10.0, 9, 512);
    let lambda = 0.3;
    let mut pairs = Vec::new();
    for row in (32..512).step_by(96) {
        let p = rrs::grid::extract_row(&t, row);
        let dg = deygout_loss_db(&p, 2.0, 2.0, lambda);
        let ep = epstein_peterson_loss_db(&p, 2.0, 2.0, lambda);
        pairs.push((dg, ep));
    }
    // Both must be non-negative and correlated: whenever one sees a
    // heavily obstructed path, so does the other.
    for &(dg, ep) in &pairs {
        assert!(dg >= 0.0 && ep >= 0.0);
        if dg > 20.0 {
            assert!(ep > 5.0, "EP {ep} missing obstruction Deygout sees ({dg})");
        }
    }
}

/// Links crossing an inhomogeneous boundary see the roughness change:
/// paths within the smooth region lose less than paths within the rough
/// region of the very same surface.
#[test]
fn inhomogeneous_terrain_splits_link_quality() {
    let smooth = Plate {
        region: Region::HalfPlane { a: 0.0, b: 1.0, c: 192.0 }, // y <= 192 smooth
        spectrum: SpectrumModel::gaussian(SurfaceParams::isotropic(0.4, 8.0)),
    };
    let layout = PlateLayout::new(
        vec![smooth],
        Some(SpectrumModel::gaussian(SurfaceParams::isotropic(2.5, 8.0))),
        16.0,
    );
    let gen = InhomogeneousGenerator::new(
        layout,
        KernelSizing::Auto { factor: 8.0, min: 16, max: 128 },
    );
    let lambda = 0.125;
    let mut low = 0.0;
    let mut high = 0.0;
    for seed in 0..4u64 {
        let t = gen.generate(&NoiseField::new(seed), Window::new(0, 0, 384, 384));
        for (acc, rows) in [(&mut low, [40usize, 100]), (&mut high, [280, 340])] {
            for row in rows {
                let p = rrs::grid::extract_row(&t, row);
                *acc += deygout_loss_db(&p, 2.0, 2.0, lambda);
            }
        }
    }
    assert!(
        high > low + 5.0,
        "rough half {high} dB must exceed smooth half {low} dB"
    );
}

/// Diagonal profiles across generated terrain behave sanely end to end.
#[test]
fn diagonal_profile_link_budget() {
    let t = terrain(1.0, 10.0, 5, 256);
    let p = extract_profile(&t, (10.0, 10.0), (245.0, 245.0), 300);
    let sweep = link_budget_sweep(&p, 3.0, 3.0, 900e6, 50, 50);
    assert!(!sweep.is_empty());
    for s in &sweep {
        assert!(s.total_db().is_finite());
        assert!(s.free_space_db > 0.0);
    }
}
