//! Crash-safe streaming: a sequential strip stream checkpointed after
//! every tile can be killed at ANY tile boundary and resumed from the
//! checkpoint alone — (seed, height, cursor) — producing a surface
//! bit-identical to the uninterrupted run. This works because the noise
//! lattice is a pure function of (seed, ix, iy) (paper §2.4): no
//! generator state beyond the cursor needs to survive the crash.

use rrs::io::{read_checkpoint, write_checkpoint, StreamCheckpoint};
use rrs::spectrum::{Gaussian, GridSpec, SurfaceParams};
use rrs::surface::{ConvolutionGenerator, KernelSizing, StripGenerator};
use rrs_grid::Grid2;

const NY: usize = 24;
const STRIP_W: usize = 8;
const N_STRIPS: usize = 6;
const SEED: u64 = 0xC0FFEE;

fn generator() -> ConvolutionGenerator {
    let s = Gaussian::new(SurfaceParams::isotropic(1.0, 4.0));
    ConvolutionGenerator::new(&s, KernelSizing::Explicit(GridSpec::unit(16, 16))).with_workers(2)
}

/// One "process": resumes from `cp` (or a fresh stream when `None`),
/// produces strips until `kill_after` strips have been emitted in this
/// incarnation or the stream reaches `N_STRIPS`, durably writing a
/// checkpoint after every strip. Returns the strips it emitted and the
/// last durable checkpoint bytes.
fn run_process(
    cp: Option<&[u8]>,
    kill_after: usize,
) -> (Vec<Grid2<f64>>, Vec<u8>) {
    let (mut sg, mut durable) = match cp {
        None => {
            let sg = StripGenerator::from_generator(generator(), NY, SEED);
            // Initial checkpoint: an empty stream at cursor 0.
            let mut buf = Vec::new();
            write_checkpoint(
                &mut buf,
                &StreamCheckpoint { seed: sg.seed(), height: sg.height() as u64, cursor: sg.cursor() },
            )
            .unwrap();
            (sg, buf)
        }
        Some(bytes) => {
            // The restarted process knows ONLY the checkpoint and the
            // spectrum configuration — no in-memory state survived.
            let cp = read_checkpoint(bytes).unwrap();
            let mut sg =
                StripGenerator::try_from_generator(generator(), cp.height as usize, cp.seed)
                    .expect("checkpointed height is valid");
            sg.seek(cp.cursor);
            (sg, bytes.to_vec())
        }
    };

    let mut strips = Vec::new();
    while (sg.cursor() as usize) < N_STRIPS * STRIP_W && strips.len() < kill_after {
        strips.push(sg.next_strip(STRIP_W));
        durable.clear();
        write_checkpoint(
            &mut durable,
            &StreamCheckpoint { seed: sg.seed(), height: sg.height() as u64, cursor: sg.cursor() },
        )
        .unwrap();
    }
    (strips, durable)
}

#[test]
fn kill_at_any_tile_then_resume_is_bit_identical() {
    // Reference: one uninterrupted process.
    let (reference, _) = run_process(None, usize::MAX);
    assert_eq!(reference.len(), N_STRIPS);

    for kill_at in 0..=N_STRIPS {
        // First incarnation dies after `kill_at` strips...
        let (mut strips, cp) = run_process(None, kill_at);
        // ...second incarnation resumes from the durable checkpoint.
        let (rest, _) = run_process(Some(&cp), usize::MAX);
        strips.extend(rest);

        assert_eq!(strips.len(), N_STRIPS, "kill_at={kill_at}");
        for (i, (got, want)) in strips.iter().zip(&reference).enumerate() {
            assert_eq!(
                got.as_slice(),
                want.as_slice(),
                "kill_at={kill_at}: strip {i} differs after resume"
            );
        }
    }
}

#[test]
fn double_crash_still_resumes_exactly() {
    let (reference, _) = run_process(None, usize::MAX);

    // Crash after 2 strips, resume, crash again after 1 more, resume.
    let (mut strips, cp1) = run_process(None, 2);
    let (more, cp2) = run_process(Some(&cp1), 1);
    strips.extend(more);
    let (rest, _) = run_process(Some(&cp2), usize::MAX);
    strips.extend(rest);

    assert_eq!(strips.len(), N_STRIPS);
    for (got, want) in strips.iter().zip(&reference) {
        assert_eq!(got.as_slice(), want.as_slice());
    }
}

#[test]
fn checkpoint_survives_serialization_round_trip_only_if_intact() {
    let (_, cp) = run_process(None, 3);
    let decoded = read_checkpoint(cp.as_slice()).unwrap();
    assert_eq!(decoded.cursor, 3 * STRIP_W as i64);
    assert_eq!(decoded.seed, SEED);
    assert_eq!(decoded.height, NY as u64);

    // A torn checkpoint write must be detected, not resumed from.
    let torn = &cp[..cp.len() - 1];
    let err = read_checkpoint(torn).unwrap_err();
    assert_eq!(err.kind(), rrs::error::ErrorKind::CorruptSnapshot, "{err}");
}
